//! Successive shortest paths (SSP) for minimum-cost flow.
//!
//! Repeatedly find a cheapest residual `s → t` path and saturate it. With a
//! shortest-path subroutine that respects reduced costs, every intermediate
//! flow is a minimum-cost flow of its value (Edmonds–Karp [7]), so on
//! infeasibility the partial routing left in the network is itself optimal.
//!
//! Three shortest-path engines are provided:
//!
//! * **SPFA** (queue-based Bellman–Ford) — tolerates negative arc costs
//!   directly; the simple reference implementation.
//! * **Dijkstra with Johnson potentials** — maintains node potentials `π`
//!   so reduced costs `c + π(u) − π(v)` stay non-negative, allowing a heap
//!   Dijkstra per augmentation, stopped as soon as the sink settles.
//! * **Dial's bucket queue** — when the maximum reduced cost over active
//!   arcs is small (composition graphs: bounded scaled-integer costs), a
//!   ring of FIFO buckets replaces the binary heap, turning every queue
//!   operation into O(1). Falls back to the heap per-path when the span
//!   is large.
//!
//! # Warm-started potentials
//!
//! All state lives in a retained [`SspScratch`], so a caller solving a
//! sequence of structurally similar graphs (the composer solves one
//! layered graph per substream) reuses buffers allocation-free *and*
//! carries potentials across solves. The potentials snapshotted after the
//! first shortest path of a solve are valid for that graph at zero flow;
//! the next solve revalidates them against its own graph in one O(m)
//! scan (`c + π(u) − π(v) ≥ 0` on every active arc) and falls back to
//! zeros or Bellman–Ford when the graph changed too much. A warm start
//! never changes results — SSP augments along true shortest paths under
//! any valid potentials, so `(flow, cost)` is bit-identical — it only
//! shrinks the region Dijkstra explores before the sink settles.

use crate::network::{FlowNetwork, NodeId};
use crate::{Infeasible, Solution};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Shortest-path engine used by [`SspSolver`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SspVariant {
    /// Queue-based Bellman–Ford per augmentation.
    Spfa,
    /// Binary-heap Dijkstra over reduced costs.
    Dijkstra,
    /// Dial's bucket-queue Dijkstra over reduced costs, with a per-path
    /// fallback to the binary heap when the cost span is large.
    Dial,
}

pub(crate) const INF: i64 = i64::MAX / 4;

/// Above this reduced-cost span the bucket ring would be larger than the
/// graph is worth; [`SspVariant::Dial`] falls back to the heap for that
/// path. Composition-graph spans are ≤ ~2300 (drop ≤ 1000 + util ≤ 100 +
/// small latency term, doubled by node splitting), far below this.
pub(crate) const DIAL_SPAN_LIMIT: i64 = 8192;

/// Retained state for [`SspSolver`]: scratch buffers for the shortest-path
/// engines plus the warm-start potential snapshot carried across solves.
/// All buffers keep their allocations between solves, so steady-state
/// solving over an arena-reset [`FlowNetwork`] performs no allocations.
#[derive(Clone, Debug, Default)]
pub(crate) struct SspScratch {
    /// Johnson potentials for the current solve. After a completed solve
    /// these are the *final* potentials, under which the installed flow's
    /// residual network has non-negative reduced costs — exactly the
    /// warm-start the `repair` module wants.
    pub(crate) pot: Vec<i64>,
    /// Tentative distances for the current shortest path.
    pub(crate) dist: Vec<i64>,
    /// Arc over which each node was reached on the current shortest path.
    pub(crate) prev_arc: Vec<usize>,
    /// Binary heap for [`SspVariant::Dijkstra`] (and the Dial fallback).
    pub(crate) heap: BinaryHeap<Reverse<(i64, u32)>>,
    /// Signed per-node imbalance used by the `repair` module (positive =
    /// excess, negative = deficit).
    pub(crate) bal: Vec<i64>,
    /// Dinic-style per-node cursor into the tight-arc adjacency, used by
    /// the repair module's zero-reduced-cost batch augmentation.
    pub(crate) cur: Vec<usize>,
    /// On-current-path markers for the repair DFS.
    pub(crate) on_path: Vec<bool>,
    /// Positions (into `tight`) of the arcs on the repair DFS's path.
    pub(crate) path: Vec<usize>,
    /// Per-node range starts into `tight`: the repair phase's compacted
    /// adjacency of shortest-path candidate arcs, grouped by tail in
    /// settle order.
    pub(crate) tight_lo: Vec<u32>,
    /// Per-node range ends into `tight`.
    pub(crate) tight_hi: Vec<u32>,
    /// CSR positions of the current repair phase's shortest-path
    /// candidate arcs (tight at settle time; the drain re-checks).
    pub(crate) tight: Vec<u32>,
    /// Bucket ring for [`SspVariant::Dial`] and the repair module's
    /// multi-source phase search; index = distance mod span.
    pub(crate) buckets: Vec<Vec<u32>>,
    /// Bucket indices dirtied by the current path, cleared afterwards
    /// (an early exit at the sink leaves unvisited entries behind).
    pub(crate) touched: Vec<u32>,
    /// SPFA work queue.
    queue: VecDeque<u32>,
    /// SPFA in-queue flags.
    in_queue: Vec<bool>,
    /// Potentials snapshotted after the first shortest path of the last
    /// solve — valid for that graph at zero flow, hence likely valid (and
    /// cheap to verify) for the structurally similar next graph.
    warm: Vec<i64>,
    /// Whether `warm` holds a usable snapshot.
    has_warm: bool,
}

impl SspScratch {
    /// Drops the warm-start snapshot (buffers stay allocated).
    pub(crate) fn forget(&mut self) {
        self.has_warm = false;
    }
}

/// Successive-shortest-path min-cost flow solver.
#[derive(Clone, Copy, Debug)]
pub struct SspSolver {
    variant: SspVariant,
}

impl SspSolver {
    /// Creates a solver with the given shortest-path engine.
    pub fn new(variant: SspVariant) -> Self {
        SspSolver { variant }
    }

    /// Routes up to `target` units from `source` to `sink` at minimum cost.
    ///
    /// One-shot entry point: allocates fresh scratch state. Callers solving
    /// many instances should hold a [`crate::FlowSolver`] instead, which
    /// retains buffers and warm-starts potentials across solves.
    pub fn solve(
        &self,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        target: i64,
    ) -> Result<Solution, Infeasible> {
        let mut scratch = SspScratch::default();
        self.solve_with(&mut scratch, net, source, sink, target)
    }

    /// [`solve`](Self::solve) against retained scratch state; reuses its
    /// buffers and warm-starts from its potential snapshot when valid.
    pub(crate) fn solve_with(
        &self,
        s: &mut SspScratch,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        target: i64,
    ) -> Result<Solution, Infeasible> {
        assert!(target >= 0, "negative flow target");
        assert!(source < net.num_nodes() && sink < net.num_nodes());
        if source == sink || target == 0 {
            return Ok(Solution { flow: 0, cost: 0 });
        }
        net.ensure_csr();
        let n = net.num_nodes();
        s.dist.clear();
        s.dist.resize(n, INF);
        s.prev_arc.clear();
        s.prev_arc.resize(n, usize::MAX);
        if self.variant != SspVariant::Spfa {
            init_potentials(net, s, n, source, self.variant == SspVariant::Dial);
        }

        let mut flow = 0i64;
        let mut cost = 0i64;
        let mut first_path = true;
        // Dial's ring span: measured exactly once (first path), then
        // carried as an upper bound — one fold of sink distance `dt`
        // grows any reduced cost by at most `dt`, so the bound tracks
        // folds in O(1) instead of rescanning all arcs per path. Only
        // when the bound drifts past the limit is it re-measured.
        let mut dial_span: Option<i64> = None;
        while flow < target {
            let reached = match self.variant {
                SspVariant::Spfa => spfa(net, source, sink, s),
                SspVariant::Dijkstra => dijkstra(net, source, sink, s),
                SspVariant::Dial => {
                    let span = match dial_span {
                        Some(bound) if bound < DIAL_SPAN_LIMIT => bound,
                        _ => max_reduced_cost(net, &s.pot),
                    };
                    dial_span = Some(span);
                    if span < DIAL_SPAN_LIMIT {
                        dial(net, source, sink, s, span)
                    } else {
                        dijkstra(net, source, sink, s)
                    }
                }
            };
            if !reached {
                return Err(Infeasible {
                    max_flow: flow,
                    cost,
                });
            }
            if self.variant != SspVariant::Spfa {
                // Fold distances into potentials, capped at the sink's
                // distance `dt` (unreached nodes count as `dt`). The cap
                // keeps reduced costs non-negative even though an early
                // exit leaves far nodes with tentative labels: settled
                // nodes have exact `dist ≤ dt`, every other node's label
                // is ≥ dt, and case analysis on `min(d, dt)` shows every
                // active arc keeps `c + π(u) − π(v) ≥ 0`.
                let dt = s.dist[sink];
                for v in 0..n {
                    s.pot[v] += s.dist[v].min(dt);
                }
                // `min(du, dt) − min(dv, dt) ≤ dt`, so the fold grows any
                // reduced cost by at most `dt`.
                dial_span = dial_span.map(|bound| bound + dt);
                if first_path && self.variant == SspVariant::Dial {
                    // After the first fold the potentials are valid for
                    // *this graph at zero flow* (nothing augmented yet) —
                    // exactly what the next structurally similar solve
                    // wants to warm-start from. Final potentials would
                    // not do: arcs saturated later reappear on rebuild
                    // with negative reduced cost. Only Dial reads the
                    // snapshot back (see `init_potentials`).
                    s.warm.clone_from(&s.pot);
                    s.has_warm = true;
                }
            }
            first_path = false;
            // Bottleneck along the path, capped by the remaining demand.
            let mut bottleneck = target - flow;
            let mut v = sink;
            while v != source {
                let a = s.prev_arc[v];
                bottleneck = bottleneck.min(net.arcs[a].cap);
                v = net.arc_tail(a);
            }
            debug_assert!(bottleneck > 0);
            // Augment.
            let mut v = sink;
            let mut path_cost = 0i64;
            while v != source {
                let a = s.prev_arc[v];
                path_cost += net.arcs[a].cost;
                net.push(a, bottleneck);
                v = net.arc_tail(a);
            }
            flow += bottleneck;
            cost += bottleneck * path_cost;
        }
        Ok(Solution { flow, cost })
    }
}

/// Initializes `s.pot` for a new solve: reuse the warm snapshot when
/// `use_warm` and it still yields non-negative reduced costs on every
/// active arc (one O(m) scan), else zeros when no active arc has
/// negative cost, else one Bellman–Ford pass. The zero check is O(1) in
/// the common case via the network's negative-edge counter and
/// flow-dirty flag.
///
/// Only the Dial variant passes `use_warm`: it converts the warm
/// snapshot's small reduced-cost span into O(1) bucket operations, a
/// measured win at every size. The heap Dijkstra gains nothing — under
/// warm potentials the previous solve's optimal paths form a
/// zero-reduced-cost plateau that costs as many heap operations to
/// explore as the cold cost-ordered region — so for it the revalidation
/// scan and the flatter heap are pure overhead (a measured 2–7%
/// regression on the layered benches before this gate).
fn init_potentials(
    net: &FlowNetwork,
    s: &mut SspScratch,
    n: usize,
    source: NodeId,
    use_warm: bool,
) {
    if use_warm && s.has_warm && s.warm.len() == n && potentials_valid(net, &s.warm) {
        s.pot.clone_from(&s.warm);
        return;
    }
    s.pot.clear();
    s.pot.resize(n, 0);
    if net.maybe_negative_active() && has_active_negative_arc(net) {
        bellman_ford(net, source, s);
    }
}

/// Whether `pot` keeps every active arc's reduced cost non-negative.
pub(crate) fn potentials_valid(net: &FlowNetwork, pot: &[i64]) -> bool {
    (0..net.arcs.len()).all(|a| {
        let arc = &net.arcs[a];
        arc.cap <= 0 || arc.cost + pot[net.arc_tail(a)] - pot[arc.to] >= 0
    })
}

/// Whether any arc with residual capacity has negative cost.
fn has_active_negative_arc(net: &FlowNetwork) -> bool {
    net.arcs.iter().any(|a| a.cap > 0 && a.cost < 0)
}

/// Maximum reduced cost over active arcs — the bucket-ring span Dial needs.
pub(crate) fn max_reduced_cost(net: &FlowNetwork, pot: &[i64]) -> i64 {
    let mut max_rc = 0;
    for a in 0..net.arcs.len() {
        let arc = &net.arcs[a];
        if arc.cap > 0 {
            let rc = arc.cost + pot[net.arc_tail(a)] - pot[arc.to];
            debug_assert!(rc >= 0, "negative reduced cost {rc} on arc {a}");
            max_rc = max_rc.max(rc);
        }
    }
    max_rc
}

/// Queue-based Bellman–Ford from `source`. Returns whether the sink was
/// reached; fills `dist`/`prev_arc`.
pub(crate) fn spfa(net: &FlowNetwork, source: NodeId, sink: NodeId, s: &mut SspScratch) -> bool {
    let SspScratch {
        dist,
        prev_arc,
        queue,
        in_queue,
        ..
    } = s;
    dist.fill(INF);
    prev_arc.fill(usize::MAX);
    dist[source] = 0;
    in_queue.clear();
    in_queue.resize(dist.len(), false);
    queue.clear();
    queue.push_back(source as u32);
    in_queue[source] = true;
    while let Some(u) = queue.pop_front() {
        let u = u as usize;
        in_queue[u] = false;
        let du = dist[u];
        let (lo, hi) = net.out_range(u);
        for i in lo..hi {
            let ca = &net.csr_arcs[i];
            if ca.cap <= 0 {
                continue;
            }
            let to = ca.to as usize;
            let nd = du + ca.cost;
            if nd < dist[to] {
                dist[to] = nd;
                prev_arc[to] = net.csr[i] as usize;
                if !in_queue[to] {
                    in_queue[to] = true;
                    queue.push_back(to as u32);
                }
            }
        }
    }
    dist[sink] < INF
}

/// Heap Dijkstra over reduced costs `c + π(u) − π(v)`, stopping as soon
/// as the sink settles. Returns whether the sink was reached.
fn dijkstra(net: &FlowNetwork, source: NodeId, sink: NodeId, s: &mut SspScratch) -> bool {
    let SspScratch {
        pot,
        dist,
        prev_arc,
        heap,
        ..
    } = s;
    dist.fill(INF);
    prev_arc.fill(usize::MAX);
    dist[source] = 0;
    heap.clear();
    heap.push(Reverse((0i64, source as u32)));
    while let Some(Reverse((d, u))) = heap.pop() {
        let u = u as usize;
        if d > dist[u] {
            continue;
        }
        if u == sink {
            heap.clear();
            return true;
        }
        let (lo, hi) = net.out_range(u);
        let base = d + pot[u];
        for i in lo..hi {
            let ca = &net.csr_arcs[i];
            if ca.cap <= 0 {
                continue;
            }
            let to = ca.to as usize;
            let nd = base + ca.cost - pot[to];
            debug_assert!(nd >= d, "negative reduced cost at CSR position {i}");
            if nd < dist[to] {
                dist[to] = nd;
                prev_arc[to] = net.csr[i] as usize;
                heap.push(Reverse((nd, to as u32)));
            }
        }
    }
    false
}

/// Dial's bucket-queue Dijkstra over reduced costs with span `max_rc`:
/// a ring of `max_rc + 1` FIFO buckets indexed by distance modulo the
/// ring size (every tentative label lives within `max_rc` of the current
/// distance, so residues are unambiguous). Stale entries are skipped via
/// a `dist` equality check; buckets touched by this path are cleared at
/// the end so an early exit cannot leak entries into the next path.
fn dial(net: &FlowNetwork, source: NodeId, sink: NodeId, s: &mut SspScratch, max_rc: i64) -> bool {
    let SspScratch {
        pot,
        dist,
        prev_arc,
        buckets,
        touched,
        ..
    } = s;
    let ring = max_rc as usize + 1;
    if buckets.len() < ring {
        buckets.resize_with(ring, Vec::new);
    }
    dist.fill(INF);
    prev_arc.fill(usize::MAX);
    dist[source] = 0;
    buckets[0].push(source as u32);
    touched.push(0);
    let mut outstanding = 1usize;
    let mut d = 0i64;
    let mut found = false;
    'scan: while outstanding > 0 {
        let idx = (d as usize) % ring;
        while let Some(v) = buckets[idx].pop() {
            outstanding -= 1;
            let v = v as usize;
            if dist[v] != d {
                continue; // stale: improved to a smaller label since insertion
            }
            if v == sink {
                found = true;
                break 'scan;
            }
            let (lo, hi) = net.out_range(v);
            let base = d + pot[v];
            for i in lo..hi {
                let ca = &net.csr_arcs[i];
                if ca.cap <= 0 {
                    continue;
                }
                let to = ca.to as usize;
                let nd = base + ca.cost - pot[to];
                debug_assert!(
                    (d..=d + max_rc).contains(&nd),
                    "reduced cost outside bucket span at CSR position {i}"
                );
                if nd < dist[to] {
                    dist[to] = nd;
                    prev_arc[to] = net.csr[i] as usize;
                    let b = (nd as usize) % ring;
                    buckets[b].push(to as u32);
                    touched.push(b as u32);
                    outstanding += 1;
                }
            }
        }
        d += 1;
    }
    for &b in touched.iter() {
        buckets[b as usize].clear();
    }
    touched.clear();
    found
}

/// One Bellman–Ford sweep to initialize potentials when negative-cost
/// arcs are present. Distances of unreachable nodes stay 0 — safe because
/// they can only become reachable after an augmentation through reachable
/// nodes, which the potential fold keeps consistent.
fn bellman_ford(net: &FlowNetwork, source: NodeId, s: &mut SspScratch) {
    let n = net.num_nodes();
    let dist = &mut s.dist;
    dist.fill(INF);
    dist[source] = 0;
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            if dist[u] >= INF {
                continue;
            }
            for &a in net.out_arcs(u) {
                let arc = &net.arcs[a as usize];
                if arc.cap > 0 && dist[u] + arc.cost < dist[arc.to] {
                    dist[arc.to] = dist[u] + arc.cost;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (p, &d) in s.pot[..n].iter_mut().zip(dist.iter()) {
        *p = if d < INF { d } else { 0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> [SspSolver; 3] {
        [
            SspSolver::new(SspVariant::Spfa),
            SspSolver::new(SspVariant::Dijkstra),
            SspSolver::new(SspVariant::Dial),
        ]
    }

    #[test]
    fn single_edge() {
        for s in all() {
            let mut net = FlowNetwork::new(2);
            net.add_edge(0, 1, 10, 5);
            let sol = s.solve(&mut net, 0, 1, 7).unwrap();
            assert_eq!(sol, Solution { flow: 7, cost: 35 });
        }
    }

    #[test]
    fn prefers_cheap_path_then_spills() {
        for s in all() {
            let mut net = FlowNetwork::new(4);
            net.add_edge(0, 1, 4, 1);
            net.add_edge(1, 3, 4, 1);
            net.add_edge(0, 2, 10, 10);
            net.add_edge(2, 3, 10, 10);
            let sol = s.solve(&mut net, 0, 3, 6).unwrap();
            assert_eq!(sol.flow, 6);
            assert_eq!(sol.cost, 4 * 2 + 2 * 20);
        }
    }

    #[test]
    fn uses_residual_rerouting() {
        // Classic example where optimality requires pushing flow back.
        // 0→1 cap1 cost1, 0→2 cap1 cost2, 1→2 cap1 cost0(!), 1→3 cap1 cost2,
        // 2→3 cap1 cost1. Max flow 2 with min cost uses rerouting.
        for s in all() {
            let mut net = FlowNetwork::new(4);
            net.add_edge(0, 1, 1, 1);
            net.add_edge(0, 2, 1, 2);
            net.add_edge(1, 2, 1, 0);
            net.add_edge(1, 3, 1, 2);
            net.add_edge(2, 3, 1, 1);
            let sol = s.solve(&mut net, 0, 3, 2).unwrap();
            assert_eq!(sol.flow, 2);
            assert_eq!(sol.cost, (1 + 1) + (2 + 2));
        }
    }

    #[test]
    fn infeasible_leaves_max_flow_installed() {
        for s in all() {
            let mut net = FlowNetwork::new(3);
            let a = net.add_edge(0, 1, 3, 1);
            let b = net.add_edge(1, 2, 2, 1);
            let err = s.solve(&mut net, 0, 2, 5).unwrap_err();
            assert_eq!(err.max_flow, 2);
            assert_eq!(err.cost, 4);
            assert_eq!(net.flow_on(a), 2);
            assert_eq!(net.flow_on(b), 2);
        }
    }

    #[test]
    fn disconnected_sink_is_zero_feasible_only() {
        for s in all() {
            let mut net = FlowNetwork::new(3);
            net.add_edge(0, 1, 5, 1);
            let err = s.solve(&mut net, 0, 2, 1).unwrap_err();
            assert_eq!(err.max_flow, 0);
            let sol = s.solve(&mut net, 0, 2, 0).unwrap();
            assert_eq!(sol.flow, 0);
        }
    }

    #[test]
    fn source_equals_sink() {
        for s in all() {
            let mut net = FlowNetwork::new(2);
            net.add_edge(0, 1, 5, 1);
            let sol = s.solve(&mut net, 0, 0, 100).unwrap();
            assert_eq!(sol, Solution { flow: 0, cost: 0 });
        }
    }

    #[test]
    fn negative_cost_edges_handled() {
        // A negative-cost arc on the cheap route; the potential variants
        // need the Bellman–Ford seeding for this.
        for s in all() {
            let mut net = FlowNetwork::new(4);
            net.add_edge(0, 1, 5, -2);
            net.add_edge(1, 3, 5, 1);
            net.add_edge(0, 2, 5, 1);
            net.add_edge(2, 3, 5, 1);
            let sol = s.solve(&mut net, 0, 3, 8).unwrap();
            assert_eq!(sol.flow, 8);
            assert_eq!(sol.cost, -5 + 3 * 2);
        }
    }

    #[test]
    fn variants_agree_on_layered_graph() {
        // A composition-shaped layered graph: 2 layers × 3 hosts.
        let build = || {
            let mut net = FlowNetwork::new(8);
            // 0 source, 1..=3 layer A, 4..=6 layer B, 7 sink.
            let caps = [30, 20, 10];
            let costs = [5, 2, 9];
            #[allow(clippy::needless_range_loop)] // i and j index two arrays
            for i in 0..3 {
                net.add_edge(0, 1 + i, caps[i], costs[i]);
                for j in 0..3 {
                    net.add_edge(1 + i, 4 + j, caps[j].min(caps[i]), costs[j] + 1);
                }
                net.add_edge(4 + i, 7, caps[i], 0);
            }
            net
        };
        let mut reference = build();
        let want = SspSolver::new(SspVariant::Spfa)
            .solve(&mut reference, 0, 7, 45)
            .unwrap();
        assert_eq!(want.flow, 45);
        for s in all() {
            let mut net = build();
            assert_eq!(s.solve(&mut net, 0, 7, 45).unwrap(), want);
        }
    }

    #[test]
    fn warm_start_across_arena_resets_matches_fresh() {
        // Solve a sequence of perturbed graphs on one retained scratch;
        // results must be identical to one-shot solves, and the second
        // solve must accept the warm snapshot (identical graph).
        for variant in [SspVariant::Dijkstra, SspVariant::Dial] {
            let solver = SspSolver::new(variant);
            let mut scratch = SspScratch::default();
            let mut arena = FlowNetwork::new(0);
            for round in 0..6i64 {
                let build = |net: &mut FlowNetwork| {
                    net.add_edge(0, 1, 10 + round, 3 + round);
                    net.add_edge(1, 3, 10 + round, 1);
                    net.add_edge(0, 2, 10, 4);
                    net.add_edge(2, 3, 10, 2 + (round % 2));
                };
                arena.reset(4);
                build(&mut arena);
                let warm = solver
                    .solve_with(&mut scratch, &mut arena, 0, 3, 14)
                    .unwrap();
                let mut fresh_net = FlowNetwork::new(4);
                build(&mut fresh_net);
                let fresh = solver.solve(&mut fresh_net, 0, 3, 14).unwrap();
                assert_eq!(warm, fresh, "{variant:?} round {round}");
            }
        }
    }

    #[test]
    fn dial_falls_back_to_heap_on_wide_span() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, DIAL_SPAN_LIMIT * 4);
        net.add_edge(1, 2, 5, 7);
        let sol = SspSolver::new(SspVariant::Dial)
            .solve(&mut net, 0, 2, 5)
            .unwrap();
        assert_eq!(sol.flow, 5);
        assert_eq!(sol.cost, 5 * (DIAL_SPAN_LIMIT * 4 + 7));
    }

    #[test]
    fn dial_handles_zero_cost_graph() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, 0);
        net.add_edge(1, 2, 5, 0);
        let sol = SspSolver::new(SspVariant::Dial)
            .solve(&mut net, 0, 2, 4)
            .unwrap();
        assert_eq!(sol, Solution { flow: 4, cost: 0 });
    }
}
