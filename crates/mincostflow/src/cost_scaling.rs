//! Goldberg's cost-scaling push–relabel algorithm for min-cost flow
//! (paper reference [11]: Goldberg, "An efficient implementation of a
//! scaling minimum-cost flow algorithm", J. Algorithms 22(1), 1997).
//!
//! The flow-value problem is reduced to a min-cost *circulation* by adding
//! a temporary `sink → source` super-arc with capacity equal to the target
//! and a cost negative enough (below any simple path's total) that the
//! optimal circulation routes as much flow as possible through it. The
//! circulation is then solved by ε-scaling: costs are multiplied by `n` so
//! that a 1/n-optimal flow in the original costs — reached when `ε < 1` in
//! scaled costs — is exactly optimal.

use crate::network::{FlowNetwork, NodeId};
use crate::{Infeasible, Solution};
use std::collections::VecDeque;

/// Cost-scaling min-cost flow solver.
///
/// `alpha` is the scaling factor by which ε shrinks between refine phases;
/// Goldberg reports small constants (2–16) all work well.
#[derive(Clone, Copy, Debug)]
pub struct CostScaling {
    alpha: i64,
}

impl Default for CostScaling {
    fn default() -> Self {
        CostScaling { alpha: 4 }
    }
}

impl CostScaling {
    /// Creates a solver with a custom scaling factor (must be ≥ 2).
    pub fn with_alpha(alpha: i64) -> Self {
        assert!(alpha >= 2, "scaling factor must be at least 2");
        CostScaling { alpha }
    }

    /// Routes up to `target` units from `source` to `sink` at minimum cost.
    /// Same contract as [`crate::SspSolver::solve`].
    pub fn solve(
        &self,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        target: i64,
    ) -> Result<Solution, Infeasible> {
        assert!(target >= 0, "negative flow target");
        assert!(source < net.num_nodes() && sink < net.num_nodes());
        if source == sink || target == 0 {
            return Ok(Solution { flow: 0, cost: 0 });
        }
        // Super-arc cost: strictly below minus the most expensive simple
        // path, so maximizing super-arc flow dominates all routing costs.
        let cost_mag: i64 = net.edges().map(|e| net.cost(e).abs()).sum::<i64>().max(1);
        let super_cost = -(cost_mag + 1);
        let super_edge = net.add_edge(sink, source, target, super_cost);

        run_circulation(net, self.alpha);

        let flow = net.flow_on(super_edge);
        net.pop_last_edge();
        let cost = net.total_cost();
        if flow == target {
            Ok(Solution { flow, cost })
        } else {
            Err(Infeasible {
                max_flow: flow,
                cost,
            })
        }
    }
}

/// Solves min-cost circulation on `net` in place by cost scaling.
fn run_circulation(net: &mut FlowNetwork, alpha: i64) {
    let n = net.num_nodes() as i64;
    // Scale costs by n: ε < 1 in scaled costs ⇒ exact optimality.
    let scale = n;
    let mut eps: i64 = net
        .arcs
        .iter()
        .map(|a| (a.cost * scale).abs())
        .max()
        .unwrap_or(0);
    if eps == 0 {
        return; // All costs zero: any circulation (zero flow) is optimal.
    }
    let mut price = vec![0i64; net.num_nodes()];
    loop {
        refine(net, scale, eps, &mut price);
        if eps == 1 {
            break;
        }
        eps = (eps / alpha).max(1);
    }
}

/// One ε-refinement phase: make the current pseudoflow ε-optimal.
fn refine(net: &mut FlowNetwork, scale: i64, eps: i64, price: &mut [i64]) {
    net.ensure_csr();
    let n = net.num_nodes();
    let mut excess = vec![0i64; n];

    // Saturate every residual arc with negative reduced cost.
    for a in 0..net.arcs.len() {
        let (from, to, cap, cost) = {
            let arc = &net.arcs[a];
            (net.arcs[a ^ 1].to, arc.to, arc.cap, arc.cost * scale)
        };
        if cap > 0 && cost + price[from] - price[to] < 0 {
            net.push(a, cap);
            excess[from] -= cap;
            excess[to] += cap;
        }
    }

    // FIFO discharge of active nodes with a current-arc pointer.
    let mut current = vec![0usize; n];
    let mut queue: VecDeque<usize> = (0..n).filter(|&v| excess[v] > 0).collect();
    let mut in_queue = vec![false; n];
    for &v in &queue {
        in_queue[v] = true;
    }

    while let Some(u) = queue.pop_front() {
        in_queue[u] = false;
        while excess[u] > 0 {
            let (start, end) = net.out_range(u);
            if current[u] == end - start {
                // Relabel: lower u's price the minimal amount that creates
                // an admissible arc, preserving ε-optimality.
                let mut best = i64::MIN;
                for ca in &net.csr_arcs[start..end] {
                    if ca.cap > 0 {
                        best = best.max(price[ca.to as usize] - ca.cost * scale);
                    }
                }
                debug_assert!(
                    best > i64::MIN,
                    "active node without residual arcs cannot exist"
                );
                price[u] = best - eps;
                current[u] = 0;
                continue;
            }
            let i = start + current[u];
            let ca = &net.csr_arcs[i];
            let (to, cap, cost) = (ca.to as usize, ca.cap, ca.cost * scale);
            if cap > 0 && cost + price[u] - price[to] < 0 {
                let amount = excess[u].min(cap);
                net.push(net.csr_arc(i), amount);
                excess[u] -= amount;
                excess[to] += amount;
                if excess[to] > 0 && !in_queue[to] && to != u {
                    in_queue[to] = true;
                    queue.push_back(to);
                }
            } else {
                current[u] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssp::{SspSolver, SspVariant};

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 10, 5);
        let sol = CostScaling::default().solve(&mut net, 0, 1, 7).unwrap();
        assert_eq!(sol, Solution { flow: 7, cost: 35 });
    }

    #[test]
    fn splits_across_parallel_routes() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 4, 1);
        net.add_edge(1, 3, 4, 1);
        net.add_edge(0, 2, 10, 10);
        net.add_edge(2, 3, 10, 10);
        let sol = CostScaling::default().solve(&mut net, 0, 3, 6).unwrap();
        assert_eq!(sol.flow, 6);
        assert_eq!(sol.cost, 4 * 2 + 2 * 20);
    }

    #[test]
    fn infeasible_routes_max_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 3, 1);
        net.add_edge(1, 2, 2, 1);
        let err = CostScaling::default().solve(&mut net, 0, 2, 5).unwrap_err();
        assert_eq!(err.max_flow, 2);
        assert_eq!(err.cost, 4);
    }

    #[test]
    fn zero_cost_network() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, 0);
        net.add_edge(1, 2, 5, 0);
        let sol = CostScaling::default().solve(&mut net, 0, 2, 5).unwrap();
        assert_eq!(sol, Solution { flow: 5, cost: 0 });
    }

    #[test]
    fn negative_costs_handled() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5, -2);
        net.add_edge(1, 3, 5, 1);
        net.add_edge(0, 2, 5, 1);
        net.add_edge(2, 3, 5, 1);
        let sol = CostScaling::default().solve(&mut net, 0, 3, 8).unwrap();
        assert_eq!(sol.flow, 8);
        assert_eq!(sol.cost, -5 + 3 * 2);
    }

    #[test]
    fn agrees_with_ssp_on_grid() {
        // A 4x4 grid with deterministic pseudo-random caps/costs.
        let build = || {
            let mut net = FlowNetwork::new(16);
            let mut x: u64 = 0xDEADBEEF;
            let mut rnd = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for r in 0..4usize {
                for c in 0..4usize {
                    let v = r * 4 + c;
                    if c + 1 < 4 {
                        net.add_edge(v, v + 1, (rnd() % 9 + 1) as i64, (rnd() % 20) as i64);
                    }
                    if r + 1 < 4 {
                        net.add_edge(v, v + 4, (rnd() % 9 + 1) as i64, (rnd() % 20) as i64);
                    }
                }
            }
            net
        };
        for target in [1, 3, 7] {
            let mut a = build();
            let mut b = build();
            let sa = SspSolver::new(SspVariant::Dijkstra).solve(&mut a, 0, 15, target);
            let sb = CostScaling::default().solve(&mut b, 0, 15, target);
            match (sa, sb) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "target {target}"),
                (Err(x), Err(y)) => {
                    assert_eq!(x.max_flow, y.max_flow, "target {target}");
                    assert_eq!(x.cost, y.cost, "target {target}");
                }
                other => panic!("solver disagreement at target {target}: {other:?}"),
            }
        }
    }

    #[test]
    fn alpha_variants_agree() {
        for alpha in [2, 8, 16] {
            let mut net = FlowNetwork::new(4);
            net.add_edge(0, 1, 4, 3);
            net.add_edge(1, 3, 4, 3);
            net.add_edge(0, 2, 9, 5);
            net.add_edge(2, 3, 9, 5);
            let sol = CostScaling::with_alpha(alpha)
                .solve(&mut net, 0, 3, 10)
                .unwrap();
            assert_eq!(sol.flow, 10);
            assert_eq!(sol.cost, 4 * 6 + 6 * 10, "alpha {alpha}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn alpha_below_two_rejected() {
        CostScaling::with_alpha(1);
    }
}
