//! Network simplex for min-cost flow, the classical primal simplex
//! method specialised to spanning-tree bases (Dantzig; the implementation
//! follows the structure popularised by LEMON's `NetworkSimplex`).
//!
//! The successive-shortest-path solvers pay one Dijkstra — `O(m log n)`
//! or a bucket sweep — per augmenting path, and composition-shaped
//! layered graphs need hundreds of paths. Network simplex replaces the
//! per-path search with spanning-tree pivots whose cost is the tree
//! depth plus a bounded candidate scan, which is why it dominates
//! augmenting-path algorithms on dense-ish instances in practice.
//!
//! The flow-value problem is reduced to a min-cost *circulation* with a
//! `sink → source` super-arc whose negative cost dominates every routing
//! cost, so maximizing super-arc flow is always worth it. The simplex
//! itself runs on the residual representation:
//!
//! * A **basis** is a spanning tree of the graph plus an artificial
//!   root; every non-tree residual arc is implicitly at a bound (its
//!   residual capacity says which). Node potentials `π` make every tree
//!   arc's reduced cost zero.
//! * A residual arc with positive capacity and negative reduced cost is
//!   a profitable **entering arc**; pushing along it and back through
//!   the tree path between its endpoints is a cycle whose bottleneck
//!   determines the **leaving arc**. Pivots are selected with a
//!   candidate-list rule: a major sweep collects `≈√m` profitable arcs,
//!   then minor iterations re-price only that list and pivot on its
//!   most negative member until it runs dry — one `O(m)` sweep
//!   amortized over many pivots.
//! * Degenerate pivots (bottleneck zero) are unavoidable — the initial
//!   all-artificial basis is entirely degenerate — and are kept finite
//!   by Cunningham's strongly-feasible-basis tie-break: the leaving arc
//!   is the blocking arc *closest to the entering arc's tail* on the
//!   tail-side path, but *closest to the join* on the head-side path.
//!   Bases mutated by a repair are not guaranteed strongly feasible, so
//!   a guard counts consecutive degenerate pivots and switches to
//!   Bland's rule (first profitable arc enters, lowest-id blocking arc
//!   leaves) when a run exceeds a bound no legitimate sequence reaches;
//!   a non-degenerate pivot strictly improves the objective and resets
//!   the guard, so the pivot count stays finite.
//! * When no entering arc exists, every real residual arc has `rc ≥ 0`,
//!   so no negative residual cycle exists and the circulation is
//!   optimal ([`crate::validate`]'s certificate).
//!
//! # Retained bases and warm repair
//!
//! Everything the simplex learns lives in a [`SimplexBasis`]: tree
//! indices, potentials, and an **extra-arc table** holding the arcs
//! that are scaffolding rather than network (root artificials, the
//! super-arc, and repair slack arcs). The network itself is never
//! structurally modified — a solve installs flows and nothing else —
//! so the basis stays id-stable across adaptation events and a caller
//! that keeps it next to its network can repair instead of re-solving:
//!
//! * **Arc deletion / capacity cut** installs a *slack arc* parallel to
//!   the damaged edge carrying exactly the drained flow at a big-M cost
//!   (`M` exceeds the sum of every user cost plus the super-arc's
//!   magnitude). Conservation holds immediately, the basis stays
//!   dual-feasible except at the freshly profitable slack reversal, and
//!   re-pivoting drains every slack unit at the optimum: cancelling a
//!   slack unit either re-routes it (a real residual path exists) or
//!   returns it through the super-arc's reverse residual (always
//!   available — it is the reverse of the flow's own feed paths), and
//!   `M` dominates both. The optimum is therefore exactly the cold
//!   min-cost max-flow of the damaged network; any value lost is
//!   reported as a shortfall.
//! * **Rate increase** raises the super-arc capacity, whose forward
//!   residual becomes the entering arc; **rate decrease** moves the
//!   delta onto a slack arc parallel to the super-arc and pins the
//!   super capacity, so draining the slack cancels the most expensive
//!   routed paths first.
//! * **Re-pricing** an edge shifts the potentials of the subtree below
//!   it (when a residual of the edge is a tree arc; non-tree arcs need
//!   no dual change at all) and re-pivots any arcs the new costs made
//!   profitable. The flow value stays pinned because the super-arc
//!   still dominates — checked against the post-change cost mass, with
//!   the basis invalidating itself when the headroom is gone.
//!
//! Artificial root arcs (node ↔ root) start the tree but never carry
//! flow: the circulation has zero supplies, so every cycle through the
//! root crosses an artificial *down*-arc whose residual capacity is the
//! (zero) artificial flow, making the cycle's bottleneck zero. That
//! keeps them flow-free forever by induction, which in turn means they
//! can cost zero and be excluded from the entering-arc scan without
//! affecting the final — artificial-free — optimum: optimality only
//! needs `rc ≥ 0` on *real* residual arcs, since negative residual
//! cycles of the real network contain no artificial arc.

use crate::network::{EdgeId, FlowNetwork, NodeId};
use crate::repair::{RepairOutcome, RepairTier};
use crate::{Infeasible, Solution};

const INF: i64 = i64::MAX / 4;
const NONE: u32 = u32::MAX;

/// Network simplex min-cost flow solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetworkSimplex;

impl NetworkSimplex {
    /// Routes up to `target` units from `source` to `sink` at minimum
    /// cost. Same contract as [`crate::SspSolver::solve`].
    pub fn solve(
        &self,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        target: i64,
    ) -> Result<Solution, Infeasible> {
        let mut basis = SimplexBasis::default();
        self.solve_with(&mut basis, net, source, sink, target)
    }

    /// [`solve`](Self::solve), retaining the final spanning-tree basis
    /// in `basis` so later adaptation events on the *same network* can
    /// be repaired by warm re-pivoting (see [`SimplexBasis`]) instead
    /// of a cold re-solve.
    pub fn solve_with(
        &self,
        basis: &mut SimplexBasis,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        target: i64,
    ) -> Result<Solution, Infeasible> {
        assert!(target >= 0, "negative flow target");
        assert!(source < net.num_nodes() && sink < net.num_nodes());
        if source == sink || target == 0 {
            basis.valid = false;
            return Ok(Solution { flow: 0, cost: 0 });
        }
        // Super-arc cost: strictly below minus the most expensive simple
        // path, so maximizing super-arc flow dominates all routing
        // costs. Doubling the classic `Σ|cost| + 1` bound leaves
        // headroom for moderate re-pricing on the repair path without
        // changing the optimum (any dominating cost yields the same
        // min-cost max-flow).
        let cost_mag: i64 = net.edges().map(|e| net.cost(e).abs()).sum::<i64>().max(1);
        basis.attach(net, source, sink, target, -(2 * cost_mag + 1));
        basis.run(net);
        basis.flow = basis.extra_cap[2 * basis.n + 1];
        basis.valid = true;
        let flow = basis.flow;
        let cost = net.total_cost();
        if flow == target {
            Ok(Solution { flow, cost })
        } else {
            Err(Infeasible {
                max_flow: flow,
                cost,
            })
        }
    }
}

/// A retained spanning-tree simplex basis: the warm-repair state left
/// behind by [`NetworkSimplex::solve_with`].
///
/// Node `n` is the artificial root; arc ids `< 2m` are the network's
/// residual arcs, ids `≥ 2m` index the extra-arc table (root
/// artificials first, then the super-arc pair, then any repair slack
/// pairs), preserving `rev(a) == a ^ 1` globally. The network is never
/// structurally modified, so a basis stays attached to its network
/// across arbitrarily many repair events; every repair method first
/// checks that the network still matches the attachment (`valid` flag,
/// arc and node counts) and returns `None` — touching nothing — when
/// it does not, letting the caller fall back to a colder tier.
#[derive(Clone, Debug, Default)]
pub struct SimplexBasis {
    /// Whether the basis reflects a completed solve of `net`.
    valid: bool,
    /// Node count of the attached network (the root is node `n`).
    n: usize,
    /// Residual arc count of the attached network.
    m2: usize,
    source: usize,
    sink: usize,
    /// Current super-arc capacity (the requested flow value).
    target: i64,
    /// Flow value currently installed (super-arc flow).
    flow: i64,
    /// Super-arc cost (negative; dominates every routing cost).
    super_cost: i64,
    /// Parent of each node in the spanning tree (root's is `NONE`).
    parent: Vec<u32>,
    /// Residual arc id directed `v → parent[v]` (root's is `NONE`).
    pred: Vec<u32>,
    /// Depth from the root, for cycle (LCA) walks.
    depth: Vec<u32>,
    /// Node potentials; tree arcs have zero reduced cost.
    pi: Vec<i64>,
    /// Tree children as intrusive sibling lists (`child_head[p]` starts
    /// the chain, `next_sib`/`prev_sib` link it): O(1) detach and a
    /// memcpy-cheap clone, both of which matter for retained bases.
    child_head: Vec<u32>,
    next_sib: Vec<u32>,
    prev_sib: Vec<u32>,
    /// Tail node of each real residual arc.
    tails: Vec<u32>,
    /// Extra-arc table: residual capacity, cost, head, and tail per
    /// extra arc, in mirrored pairs. Layout: `[0, 2n)` root
    /// artificials (excluded from the entering scan), `[2n, 2n+2)` the
    /// super-arc pair, `[2n+2, ..)` repair slack pairs.
    extra_cap: Vec<i64>,
    extra_cost: Vec<i64>,
    extra_to: Vec<u32>,
    extra_tail: Vec<u32>,
    /// Entering-arc search state: the position where the next major
    /// sweep resumes, and the retained candidate list it refills
    /// (profitable arc ids; minor iterations re-price the list instead
    /// of rescanning the arc space).
    next_arc: usize,
    candidates: Vec<u32>,
    /// Pivots performed by the last `run` (reported as
    /// [`RepairOutcome::phases`]).
    pivots: u32,
    /// Test hook: keep Bland's rule engaged on every pivot.
    force_bland: bool,
    /// Cost accumulated by pushes on real arcs during the last repair.
    cost_acc: i64,
    /// Scratch for subtree traversal, path reversal, and cycle pushes.
    stack: Vec<u32>,
    path: Vec<(u32, u32)>,
    cycle: Vec<u32>,
    /// Per-cycle-arc leaving-candidate metadata `(node, side)` aligned
    /// with `cycle`, for Bland-mode leaving-arc selection.
    meta: Vec<(u32, u8)>,
}

impl SimplexBasis {
    /// Whether the basis reflects a completed solve and can attempt
    /// warm repairs.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Marks the basis stale. Required whenever the attached network's
    /// flows are changed by anything other than this basis's own
    /// methods (e.g. a phased-repair fallback ran on the same network).
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// The node potentials certifying the last solve/repair, for
    /// [`crate::validate::check_certificate`]: every real residual arc
    /// has non-negative reduced cost under them at a simplex optimum.
    /// `None` when the basis is stale.
    pub fn potentials(&self) -> Option<&[i64]> {
        if self.valid {
            Some(&self.pi[..self.n])
        } else {
            None
        }
    }

    /// Test hook: run every pivot under Bland's rule instead of only
    /// engaging it when the degeneracy guard trips.
    #[doc(hidden)]
    pub fn set_force_bland(&mut self, on: bool) {
        self.force_bland = on;
    }

    /// Whether the basis is attached to this exact network shape. The
    /// arc/node counts catch rebuilt or extended networks; flow-level
    /// divergence is the caller's contract (see [`invalidate`](Self::invalidate)).
    fn compatible(&self, net: &FlowNetwork) -> bool {
        self.valid && net.arcs.len() == self.m2 && net.num_nodes() == self.n
    }

    /// Disables every edge in `dead` and re-routes the drained flow by
    /// warm re-pivoting: each drained edge gets a big-M slack arc
    /// carrying its flow, and the re-pivots drain every slack unit (see
    /// the module docs for why that is guaranteed), leaving exactly the
    /// cold min-cost max-flow of the damaged network. Returns `None` —
    /// without touching the network — when the basis is stale or
    /// attached to a different network.
    pub fn repair_deletions(
        &mut self,
        net: &mut FlowNetwork,
        dead: &[EdgeId],
    ) -> Option<RepairOutcome> {
        if !self.compatible(net) {
            return None;
        }
        self.cost_acc = 0;
        self.pivots = 0;
        let old_flow = self.flow;
        let mut drained_total = 0i64;
        for &e in dead {
            let (u, v) = net.endpoints(e);
            let cost = net.cost(e);
            let f = net.disable_edge(e);
            if f > 0 {
                drained_total += f;
                self.cost_acc -= f * cost;
                self.install_slack(u as u32, v as u32, f);
            }
        }
        self.run(net);
        self.finish_drain(old_flow, drained_total)
    }

    /// Cuts edge `e`'s capacity to `new_cap` (which must not exceed the
    /// current capacity) and re-routes any flow above the new bound,
    /// exactly like [`repair_deletions`](Self::repair_deletions) with a
    /// partial drain. Returns `None` — without touching the network —
    /// when the basis cannot serve the repair.
    pub fn cut_capacity(
        &mut self,
        net: &mut FlowNetwork,
        e: EdgeId,
        new_cap: i64,
    ) -> Option<RepairOutcome> {
        if !self.compatible(net) {
            return None;
        }
        self.cost_acc = 0;
        self.pivots = 0;
        let old_flow = self.flow;
        let (u, v) = net.endpoints(e);
        let cost = net.cost(e);
        let drained = net.reduce_capacity(e, new_cap);
        if drained > 0 {
            self.cost_acc -= drained * cost;
            self.install_slack(u as u32, v as u32, drained);
        }
        self.run(net);
        self.finish_drain(old_flow, drained)
    }

    /// Raises the installed `source → sink` flow by `delta` at minimum
    /// added cost by lifting the super-arc capacity and re-pivoting.
    /// Units that no longer fit are reported as a shortfall. Returns
    /// `None` when the basis cannot serve the repair.
    pub fn increase_flow(
        &mut self,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        delta: i64,
    ) -> Option<RepairOutcome> {
        if !self.compatible(net) || source != self.source || sink != self.sink || delta < 0 {
            return None;
        }
        self.cost_acc = 0;
        self.pivots = 0;
        let old_flow = self.flow;
        self.target += delta;
        self.extra_cap[2 * self.n] += delta;
        self.run(net);
        let new_flow = self.extra_cap[2 * self.n + 1];
        self.flow = new_flow;
        let routed = new_flow - old_flow;
        Some(self.outcome(routed, delta - routed))
    }

    /// Lowers the installed `source → sink` flow by `delta`, cancelling
    /// the most expensive routed paths first: the delta moves from the
    /// super-arc onto a parallel big-M slack whose drainage runs
    /// backwards through the flow's own residuals (always possible, so
    /// the repair never falls short). Returns `None` when the basis
    /// cannot serve the repair or `delta` exceeds the installed value.
    pub fn decrease_flow(
        &mut self,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        delta: i64,
    ) -> Option<RepairOutcome> {
        if !self.compatible(net)
            || source != self.source
            || sink != self.sink
            || delta < 0
            || delta > self.flow
        {
            return None;
        }
        if delta == 0 {
            self.cost_acc = 0;
            self.pivots = 0;
            return Some(self.outcome(0, 0));
        }
        self.cost_acc = 0;
        self.pivots = 0;
        let old_flow = self.flow;
        let s2 = 2 * self.n;
        // Move `delta` units of the super-arc's return flow onto the
        // slack (same endpoints, same direction — conservation holds)
        // and pin the super capacity at the lower value so the drain
        // cannot restore it.
        self.extra_cap[s2 + 1] -= delta;
        self.extra_cap[s2] = 0;
        self.target = old_flow - delta;
        self.install_slack(self.sink as u32, self.source as u32, delta);
        self.run(net);
        self.finish_drain(old_flow - delta, delta)
    }

    /// Repairs after edge `e` was re-priced via
    /// [`FlowNetwork::set_cost`] (the caller applies the price change
    /// first; `old_cost` is the price before it). The dual update is
    /// localized: only when a residual of `e` is a tree arc does any
    /// potential move, and then only the subtree below it shifts.
    /// Re-pivoting restores optimality at the *pinned* flow value —
    /// the super-arc still dominates every user cost, which is checked
    /// against the post-change cost mass; when that headroom is gone
    /// the basis invalidates itself and returns `None`, and the caller
    /// must re-solve cold.
    pub fn reprice(
        &mut self,
        net: &mut FlowNetwork,
        e: EdgeId,
        old_cost: i64,
    ) -> Option<RepairOutcome> {
        if !self.compatible(net) {
            return None;
        }
        let span: i64 = net.edges().map(|x| net.cost(x).abs()).sum();
        if span >= -self.super_cost {
            self.valid = false;
            return None;
        }
        self.cost_acc = net.flow_on(e) * (net.cost(e) - old_cost);
        self.pivots = 0;
        let (u, v) = net.endpoints(e);
        let fwd = (e.0 * 2) as u32;
        let sub_root = if self.pred[u] == fwd {
            Some(u as u32)
        } else if self.pred[v] == fwd ^ 1 {
            Some(v as u32)
        } else {
            None
        };
        if let Some(w) = sub_root {
            let a = self.pred[w as usize];
            let want = self.pi[self.parent[w as usize] as usize] - self.cost_of(net, a);
            let shift = want - self.pi[w as usize];
            if shift != 0 {
                self.stack.clear();
                self.stack.push(w);
                while let Some(x) = self.stack.pop() {
                    self.pi[x as usize] += shift;
                    let mut c = self.child_head[x as usize];
                    while c != NONE {
                        self.stack.push(c);
                        c = self.next_sib[c as usize];
                    }
                }
            }
        }
        self.run(net);
        debug_assert_eq!(
            self.extra_cap[2 * self.n + 1],
            self.flow,
            "reprice moved the flow value"
        );
        Some(self.outcome(0, 0))
    }

    /// Rebuilds the basis for a fresh solve of `net`.
    fn attach(
        &mut self,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        target: i64,
        super_cost: i64,
    ) {
        let n = net.num_nodes();
        let root = n as u32;
        let m2 = net.arcs.len();
        self.valid = false;
        self.n = n;
        self.m2 = m2;
        self.source = source;
        self.sink = sink;
        self.target = target;
        self.flow = 0;
        self.super_cost = super_cost;
        self.tails.clear();
        self.tails.extend((0..m2).map(|a| net.arc_tail(a) as u32));
        self.parent.clear();
        self.parent.resize(n + 1, root);
        self.parent[n] = NONE;
        self.pred.clear();
        self.pred.extend((0..n as u32).map(|v| m2 as u32 + 2 * v));
        self.pred.push(NONE);
        self.depth.clear();
        self.depth.resize(n + 1, 1);
        self.depth[n] = 0;
        // Artificial arcs cost zero, so all-zero potentials satisfy the
        // tree invariant and real arcs start at their plain reduced
        // costs. Zero cost is safe because artificial arcs never carry
        // flow (see the module docs) — they are scaffolding only.
        self.pi.clear();
        self.pi.resize(n + 1, 0);
        self.child_head.clear();
        self.child_head.resize(n + 1, NONE);
        self.next_sib.clear();
        self.next_sib.resize(n + 1, NONE);
        self.prev_sib.clear();
        self.prev_sib.resize(n + 1, NONE);
        for v in (0..n as u32).rev() {
            self.attach_child(root, v);
        }
        self.extra_cap.clear();
        self.extra_cost.clear();
        self.extra_to.clear();
        self.extra_tail.clear();
        for v in 0..n as u32 {
            self.push_extra(v, root, INF, 0); // v → root up / root → v down
        }
        self.push_extra(sink as u32, source as u32, target, super_cost);
        self.next_arc = 0;
        self.candidates.clear();
        self.pivots = 0;
        self.cost_acc = 0;
    }

    /// Appends a mirrored extra-arc pair; returns the forward index.
    fn push_extra(&mut self, tail: u32, to: u32, cap: i64, cost: i64) -> usize {
        let k = self.extra_cap.len();
        self.extra_cap.push(cap);
        self.extra_cost.push(cost);
        self.extra_tail.push(tail);
        self.extra_to.push(to);
        self.extra_cap.push(0);
        self.extra_cost.push(-cost);
        self.extra_tail.push(to);
        self.extra_to.push(tail);
        k
    }

    /// Installs a slack arc `tail → to` carrying `amount` units at the
    /// dominating big-M cost: the pseudo-flow stays conserved and every
    /// slack unit is worth draining at the optimum.
    fn install_slack(&mut self, tail: u32, to: u32, amount: i64) {
        let m = -2 * self.super_cost + 1;
        let k = self.push_extra(tail, to, 0, m);
        self.extra_cap[k + 1] = amount;
        // The reverse arc (draining the slack at reward M) is profitable
        // by construction; seeding it spares the first major sweep. The
        // list is empty whenever the basis is optimal, so no duplicates.
        self.candidates.push((self.m2 + k + 1) as u32);
    }

    /// Post-drain bookkeeping shared by the slack-based repairs:
    /// retires the slack capacity (its flow is provably drained),
    /// refreshes the installed value, and converts any lost value into
    /// the shortfall of an outcome routing `imbalance` units.
    fn finish_drain(&mut self, expected_flow: i64, imbalance: i64) -> Option<RepairOutcome> {
        let base = 2 * self.n + 2;
        let mut k = base;
        while k < self.extra_cap.len() {
            debug_assert_eq!(self.extra_cap[k + 1], 0, "slack arc not fully drained");
            self.extra_cap[k] = 0;
            k += 2;
        }
        let new_flow = self.extra_cap[2 * self.n + 1];
        self.flow = new_flow;
        let shortfall = expected_flow - new_flow;
        Some(self.outcome(imbalance - shortfall, shortfall))
    }

    fn outcome(&self, routed: i64, shortfall: i64) -> RepairOutcome {
        RepairOutcome {
            routed,
            shortfall,
            cost_delta: self.cost_acc,
            warm: true,
            phases: self.pivots,
            tier: RepairTier::WarmBasis,
        }
    }

    #[inline]
    fn res_cap(&self, net: &FlowNetwork, a: u32) -> i64 {
        let a = a as usize;
        if a < self.m2 {
            net.arcs[a].cap
        } else {
            self.extra_cap[a - self.m2]
        }
    }

    #[inline]
    fn cost_of(&self, net: &FlowNetwork, a: u32) -> i64 {
        let a = a as usize;
        if a < self.m2 {
            net.arcs[a].cost
        } else {
            self.extra_cost[a - self.m2]
        }
    }

    #[inline]
    fn tail_of(&self, a: u32) -> u32 {
        let a = a as usize;
        if a < self.m2 {
            self.tails[a]
        } else {
            self.extra_tail[a - self.m2]
        }
    }

    #[inline]
    fn head_of(&self, net: &FlowNetwork, a: u32) -> u32 {
        let a = a as usize;
        if a < self.m2 {
            net.arcs[a].to as u32
        } else {
            self.extra_to[a - self.m2]
        }
    }

    #[inline]
    fn push(&mut self, net: &mut FlowNetwork, a: u32, amount: i64) {
        let a = a as usize;
        if a < self.m2 {
            self.cost_acc += amount * net.arcs[a].cost;
            net.push_unmirrored(a, amount);
        } else {
            let k = a - self.m2;
            self.extra_cap[k] -= amount;
            self.extra_cap[k ^ 1] += amount;
        }
    }

    #[inline]
    fn attach_child(&mut self, p: u32, w: u32) {
        let h = self.child_head[p as usize];
        self.next_sib[w as usize] = h;
        self.prev_sib[w as usize] = NONE;
        if h != NONE {
            self.prev_sib[h as usize] = w;
        }
        self.child_head[p as usize] = w;
    }

    #[inline]
    fn detach_child(&mut self, p: u32, w: u32) {
        let prev = self.prev_sib[w as usize];
        let next = self.next_sib[w as usize];
        if prev == NONE {
            self.child_head[p as usize] = next;
        } else {
            self.next_sib[prev as usize] = next;
        }
        if next != NONE {
            self.prev_sib[next as usize] = prev;
        }
    }

    /// Pivots to optimality. Degenerate-run guard: Cunningham's
    /// tie-break bounds degenerate sequences only for strongly feasible
    /// bases, which repair mutations do not preserve, so a run of
    /// consecutive zero-length pivots past `2(n + m) + 16` — far beyond
    /// anything a strongly feasible basis produces — flips the pivot
    /// rule to Bland's, whose anti-cycling guarantee needs no
    /// feasibility structure. The first non-degenerate pivot strictly
    /// improves the objective and hands control back to block search.
    fn run(&mut self, net: &mut FlowNetwork) {
        let threshold = (2 * (self.n + self.m2) + 16) as u32;
        let mut degen_run = 0u32;
        let mut bland = self.force_bland;
        loop {
            let e = if bland {
                self.find_entering_bland(net)
            } else {
                self.find_entering(net)
            };
            let Some(e) = e else { break };
            let degenerate = self.pivot(net, e, bland);
            self.pivots = self.pivots.saturating_add(1);
            if degenerate {
                degen_run += 1;
                if degen_run >= threshold {
                    bland = true;
                }
            } else {
                degen_run = 0;
                bland = self.force_bland;
            }
        }
    }

    /// Candidate-list pivot rule. A *major* sweep scans the real
    /// residual arcs and the scannable extras (super-arc and slack
    /// pairs; root artificials are skipped by construction) in position
    /// order from where the last sweep stopped, wrapping around, and
    /// collects up to `≈√m` profitable arcs into the retained list.
    /// *Minor* iterations then only re-price the list — evicting arcs
    /// whose reduced cost went non-negative or that saturated — and
    /// return its most negative member, so one `O(m)` sweep is
    /// amortized over many pivots. That amortization is what keeps a
    /// warm repair (a handful of localized pivots) from paying a full
    /// arc-space scan per pivot. `None` when the list is empty and a
    /// full sweep collects nothing: optimality.
    fn find_entering(&mut self, net: &FlowNetwork) -> Option<u32> {
        // Minor iteration: re-price the retained candidates.
        let mut best: Option<u32> = None;
        let mut best_rc = 0i64;
        let mut i = 0;
        while i < self.candidates.len() {
            let a = self.candidates[i];
            let rc = self.cost_of(net, a) + self.pi[self.tail_of(a) as usize]
                - self.pi[self.head_of(net, a) as usize];
            if rc < 0 && self.res_cap(net, a) > 0 {
                if rc < best_rc {
                    best_rc = rc;
                    best = Some(a);
                }
                i += 1;
            } else {
                self.candidates.swap_remove(i);
            }
        }
        if best.is_some() {
            return best;
        }
        // Major sweep: the list went dry (so it holds no duplicates
        // when refilled here). The circular scan is unrolled into
        // contiguous segments — net arcs, then extras — so the hot
        // pricing loops carry no per-arc branch or wrap check.
        let m2 = self.m2;
        let extra_base = 2 * self.n;
        let scan_len = m2 + self.extra_cap.len() - extra_base;
        let fill = (scan_len as f64).sqrt() as usize / 2 + 8;
        let mut scanned = 0usize;
        let mut p = if self.next_arc < scan_len {
            self.next_arc
        } else {
            0
        };
        'sweep: while scanned < scan_len {
            let seg_end = if p < m2 { m2 } else { scan_len };
            let end = seg_end.min(p + (scan_len - scanned));
            if p < m2 {
                for q in p..end {
                    let arc = &net.arcs[q];
                    if arc.cap > 0 {
                        let rc = arc.cost + self.pi[self.tails[q] as usize] - self.pi[arc.to];
                        if rc < 0 {
                            self.candidates.push(q as u32);
                            if rc < best_rc {
                                best_rc = rc;
                                best = Some(q as u32);
                            }
                            if self.candidates.len() >= fill {
                                p = q + 1;
                                break 'sweep;
                            }
                        }
                    }
                }
            } else {
                for q in p..end {
                    let k = q - m2 + extra_base;
                    if self.extra_cap[k] > 0 {
                        let rc = self.extra_cost[k] + self.pi[self.extra_tail[k] as usize]
                            - self.pi[self.extra_to[k] as usize];
                        if rc < 0 {
                            let a = (m2 + k) as u32;
                            self.candidates.push(a);
                            if rc < best_rc {
                                best_rc = rc;
                                best = Some(a);
                            }
                            if self.candidates.len() >= fill {
                                p = q + 1;
                                break 'sweep;
                            }
                        }
                    }
                }
            }
            scanned += end - p;
            p = if end == scan_len { 0 } else { end };
        }
        self.next_arc = if p >= scan_len { 0 } else { p };
        best
    }

    /// Bland's entering rule: the first profitable arc in fixed
    /// position order. Together with lowest-id leaving selection this
    /// cannot cycle, at the price of slower convergence — it only runs
    /// while the degeneracy guard is tripped.
    fn find_entering_bland(&mut self, net: &FlowNetwork) -> Option<u32> {
        let m2 = self.m2;
        let extra_base = 2 * self.n;
        let scan_len = m2 + self.extra_cap.len() - extra_base;
        for p in 0..scan_len {
            let (a, cap, cost, tail, to);
            if p < m2 {
                let arc = &net.arcs[p];
                a = p;
                cap = arc.cap;
                cost = arc.cost;
                tail = self.tails[p] as usize;
                to = arc.to;
            } else {
                let k = p - m2 + extra_base;
                a = m2 + k;
                cap = self.extra_cap[k];
                cost = self.extra_cost[k];
                tail = self.extra_tail[k] as usize;
                to = self.extra_to[k] as usize;
            }
            if cap > 0 && cost + self.pi[tail] - self.pi[to] < 0 {
                return Some(a as u32);
            }
        }
        None
    }

    /// One simplex pivot on entering residual arc `e` (pushed along its
    /// direction): find the tree cycle, augment by its bottleneck, and
    /// re-hang the basis if a tree arc leaves. Returns whether the
    /// pivot was degenerate (zero-length push).
    fn pivot(&mut self, net: &mut FlowNetwork, e: u32, bland: bool) -> bool {
        let first = self.tail_of(e);
        let second = self.head_of(net, e);

        // Join: lowest common ancestor of the entering arc's endpoints.
        let (mut x, mut y) = (first, second);
        while self.depth[x as usize] > self.depth[y as usize] {
            x = self.parent[x as usize];
        }
        while self.depth[y as usize] > self.depth[x as usize] {
            y = self.parent[y as usize];
        }
        while x != y {
            x = self.parent[x as usize];
            y = self.parent[y as usize];
        }
        let join = x;

        // Bottleneck search around the cycle, recording the traversed
        // residual arcs so the augmentation doesn't re-walk the tree.
        // The asymmetric tie-breaks (`<` on the tail-side path, `<=` on
        // the head-side) keep a strongly feasible basis strongly
        // feasible, which bounds degenerate pivot runs.
        let mut delta = self.res_cap(net, e);
        let mut u_out = NONE;
        let mut result = 0u8;
        self.cycle.clear();
        self.meta.clear();
        self.cycle.push(e);
        self.meta.push((NONE, 0));
        let mut w = first;
        while w != join {
            // Cycle direction here is parent → w: the reverse residual.
            let a = self.pred[w as usize] ^ 1;
            let d = self.res_cap(net, a);
            self.cycle.push(a);
            self.meta.push((w, 1));
            if d < delta {
                delta = d;
                u_out = w;
                result = 1;
            }
            w = self.parent[w as usize];
        }
        let mut w = second;
        while w != join {
            // Cycle direction here is w → parent: the pred arc itself.
            let a = self.pred[w as usize];
            let d = self.res_cap(net, a);
            self.cycle.push(a);
            self.meta.push((w, 2));
            if d <= delta {
                delta = d;
                u_out = w;
                result = 2;
            }
            w = self.parent[w as usize];
        }
        if bland {
            // Bland's leaving rule: the lowest-id blocking arc (the
            // entering arc itself counts — that is the bound flip).
            let mut best_a = u32::MAX;
            for i in 0..self.cycle.len() {
                let a = self.cycle[i];
                if self.res_cap(net, a) == delta && a < best_a {
                    best_a = a;
                    let (node, side) = self.meta[i];
                    u_out = node;
                    result = side;
                }
            }
        }

        if delta > 0 {
            for k in 0..self.cycle.len() {
                self.push(net, self.cycle[k], delta);
            }
        }

        if result == 0 {
            // The entering arc itself is the bottleneck: it saturates
            // and stays non-basic (the classic bound flip); no change
            // to the tree.
            return delta == 0;
        }

        // The leaving arc is `pred[u_out]`; removing it cuts off the
        // subtree S containing u_in, which re-hangs below v_in through
        // the entering arc.
        let (u_in, v_in, in_arc) = if result == 1 {
            (first, second, e)
        } else {
            (second, first, e ^ 1)
        };
        // All of S shifts by the entering arc's reduced cost so it
        // becomes the zero of the new tree arc.
        let in_cost = self.cost_of(net, in_arc);
        let sigma = -(in_cost + self.pi[u_in as usize] - self.pi[v_in as usize]);

        // Reverse the tree path u_in → u_out: each old parent becomes
        // the child of its old child. Recorded first (node, old pred),
        // then applied from u_out downward so every child-list lookup
        // still sees the pre-pivot relation it detaches.
        self.path.clear();
        let mut w = u_in;
        loop {
            self.path.push((w, self.pred[w as usize]));
            if w == u_out {
                break;
            }
            w = self.parent[w as usize];
        }
        for i in (0..self.path.len()).rev() {
            let (w, _) = self.path[i];
            let old_p = if i + 1 < self.path.len() {
                self.path[i + 1].0
            } else {
                self.parent[w as usize]
            };
            let (new_p, new_pred) = if i == 0 {
                (v_in, in_arc)
            } else {
                (self.path[i - 1].0, self.path[i - 1].1 ^ 1)
            };
            self.detach_child(old_p, w);
            self.parent[w as usize] = new_p;
            self.pred[w as usize] = new_pred;
            self.attach_child(new_p, w);
        }

        // Refresh depth and potential across the re-hung subtree.
        self.stack.clear();
        self.stack.push(u_in);
        while let Some(v) = self.stack.pop() {
            let p = self.parent[v as usize] as usize;
            self.depth[v as usize] = self.depth[p] + 1;
            self.pi[v as usize] += sigma;
            let mut c = self.child_head[v as usize];
            while c != NONE {
                self.stack.push(c);
                c = self.next_sib[c as usize];
            }
        }
        delta == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssp::{SspSolver, SspVariant};

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 10, 5);
        let sol = NetworkSimplex.solve(&mut net, 0, 1, 7).unwrap();
        assert_eq!(sol, Solution { flow: 7, cost: 35 });
    }

    #[test]
    fn splits_across_parallel_routes() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 4, 1);
        net.add_edge(1, 3, 4, 1);
        net.add_edge(0, 2, 10, 10);
        net.add_edge(2, 3, 10, 10);
        let sol = NetworkSimplex.solve(&mut net, 0, 3, 6).unwrap();
        assert_eq!(sol.flow, 6);
        assert_eq!(sol.cost, 4 * 2 + 2 * 20);
    }

    #[test]
    fn infeasible_routes_max_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 3, 1);
        net.add_edge(1, 2, 2, 1);
        let err = NetworkSimplex.solve(&mut net, 0, 2, 5).unwrap_err();
        assert_eq!(err.max_flow, 2);
        assert_eq!(err.cost, 4);
    }

    #[test]
    fn negative_costs_handled() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5, -2);
        net.add_edge(1, 3, 5, 1);
        net.add_edge(0, 2, 5, 1);
        net.add_edge(2, 3, 5, 1);
        let sol = NetworkSimplex.solve(&mut net, 0, 3, 8).unwrap();
        assert_eq!(sol.flow, 8);
        assert_eq!(sol.cost, -5 + 3 * 2);
    }

    #[test]
    fn zero_capacity_graph_is_infeasible() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 0, 1);
        let err = NetworkSimplex.solve(&mut net, 0, 1, 1).unwrap_err();
        assert_eq!(err.max_flow, 0);
        assert_eq!(err.cost, 0);
    }

    #[test]
    fn flows_left_installed_are_consistent() {
        let mut net = FlowNetwork::new(4);
        let e1 = net.add_edge(0, 1, 4, 1);
        let e2 = net.add_edge(1, 3, 4, 1);
        net.add_edge(0, 2, 10, 10);
        net.add_edge(2, 3, 10, 10);
        let sol = NetworkSimplex.solve(&mut net, 0, 3, 6).unwrap();
        assert_eq!(net.flow_on(e1), 4);
        assert_eq!(net.flow_on(e2), 4);
        assert_eq!(net.total_cost(), sol.cost);
        assert!(crate::validate::check_flow(&net, 0, 3, sol.flow).is_empty());
        crate::validate::check_optimality(&net).unwrap();
    }

    #[test]
    fn retained_basis_certifies_the_solve() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 4, 1);
        net.add_edge(1, 3, 4, 1);
        net.add_edge(0, 2, 10, 10);
        net.add_edge(2, 3, 10, 10);
        let mut basis = SimplexBasis::default();
        NetworkSimplex
            .solve_with(&mut basis, &mut net, 0, 3, 6)
            .unwrap();
        assert!(basis.is_valid());
        let pot = basis.potentials().unwrap();
        crate::validate::check_certificate(&net, pot).unwrap();
        // A deletion repair keeps the certificate current.
        let out = basis.repair_deletions(&mut net, &[EdgeId(0)]).unwrap();
        assert!(out.complete(), "{out:?}");
        crate::validate::check_certificate(&net, basis.potentials().unwrap()).unwrap();
    }

    #[test]
    fn basis_rejects_mismatched_network() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 4, 1);
        net.add_edge(1, 3, 4, 1);
        let mut basis = SimplexBasis::default();
        let _ = NetworkSimplex.solve_with(&mut basis, &mut net, 0, 3, 4);
        // A structurally different network must be refused untouched.
        let mut other = FlowNetwork::new(4);
        let e = other.add_edge(0, 1, 4, 1);
        assert!(basis.repair_deletions(&mut other, &[e]).is_none());
        assert_eq!(other.capacity(e), 4, "refused repair must not mutate");
        // So must the same network after a structural change.
        net.add_edge(0, 3, 1, 1);
        assert!(basis.repair_deletions(&mut net, &[EdgeId(0)]).is_none());
        basis.invalidate();
        assert!(basis.potentials().is_none());
    }

    /// A degeneracy storm: K parallel two-hop routes with a zero-cost
    /// clique among the middle nodes. Every middle-to-middle move is a
    /// zero-reduced-cost tie, so block search performs long degenerate
    /// runs; the guard and Bland's rule must both terminate on it.
    fn degenerate_clique() -> FlowNetwork {
        let k = 6usize;
        let mut net = FlowNetwork::new(k + 2);
        let (s, t) = (0usize, k + 1);
        for i in 1..=k {
            net.add_edge(s, i, 3, 1);
            net.add_edge(i, t, 3, 1);
        }
        for i in 1..=k {
            for j in 1..=k {
                if i != j {
                    net.add_edge(i, j, 3, 0);
                }
            }
        }
        net
    }

    #[test]
    fn anticycling_guard_terminates_on_degenerate_network() {
        // Plain run: the guard may or may not trip, but the solve must
        // terminate and agree with SSP.
        let mut net = degenerate_clique();
        let sol = NetworkSimplex.solve(&mut net, 0, 7, 18).unwrap();
        let mut reference = degenerate_clique();
        let want = SspSolver::new(SspVariant::Dijkstra)
            .solve(&mut reference, 0, 7, 18)
            .unwrap();
        assert_eq!(sol, want);
        assert!(crate::validate::check_flow(&net, 0, 7, 18).is_empty());
        crate::validate::check_optimality(&net).unwrap();
    }

    #[test]
    fn forced_bland_rule_matches_ssp() {
        // Deterministic Bland coverage: every pivot (including the
        // fully-degenerate artificial start) runs under Bland's rule.
        // Completing at the SSP cost is the termination regression.
        let mut net = degenerate_clique();
        let mut basis = SimplexBasis::default();
        basis.set_force_bland(true);
        let sol = NetworkSimplex
            .solve_with(&mut basis, &mut net, 0, 7, 18)
            .unwrap();
        let mut reference = degenerate_clique();
        let want = SspSolver::new(SspVariant::Dijkstra)
            .solve(&mut reference, 0, 7, 18)
            .unwrap();
        assert_eq!(sol.cost, want.cost);
        assert_eq!(sol.flow, want.flow);
        // And a Bland-guarded repair on the degenerate instance still
        // matches a cold re-solve of the damaged network — which is now
        // infeasible at the old value (a 3-cap source edge died), so
        // the repair must report exactly that shortfall.
        let out = basis.repair_deletions(&mut net, &[EdgeId(0)]).unwrap();
        assert_eq!(out.tier, RepairTier::WarmBasis);
        assert_eq!(out.shortfall, 3);
        let mut cold = degenerate_clique();
        cold.disable_edge(EdgeId(0));
        let want = SspSolver::new(SspVariant::Dijkstra)
            .solve(&mut cold, 0, 7, 18)
            .unwrap_err();
        assert_eq!(want.max_flow, 15);
        assert_eq!(net.total_cost(), want.cost);
        assert_eq!(sol.cost + out.cost_delta, want.cost);
    }

    #[test]
    fn agrees_with_ssp_on_random_grids() {
        // Deterministic xorshift instances; same generator as the
        // cost-scaling agreement test.
        let build = |seed: u64| {
            let mut net = FlowNetwork::new(16);
            let mut x = seed;
            let mut rnd = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for r in 0..4usize {
                for c in 0..4usize {
                    let v = r * 4 + c;
                    if c + 1 < 4 {
                        net.add_edge(v, v + 1, (rnd() % 9 + 1) as i64, (rnd() % 20) as i64);
                    }
                    if r + 1 < 4 {
                        net.add_edge(v, v + 4, (rnd() % 9 + 1) as i64, (rnd() % 20) as i64);
                    }
                }
            }
            net
        };
        for seed in [0xDEADBEEF, 0xC0FFEE, 0x5EED] {
            for target in [1, 3, 7, 50] {
                let mut a = build(seed);
                let mut b = build(seed);
                let sa = SspSolver::new(SspVariant::Dijkstra).solve(&mut a, 0, 15, target);
                let sb = NetworkSimplex.solve(&mut b, 0, 15, target);
                match (sa, sb) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y, "seed {seed:#x} target {target}"),
                    (Err(x), Err(y)) => {
                        assert_eq!(x.max_flow, y.max_flow, "seed {seed:#x} target {target}");
                        assert_eq!(x.cost, y.cost, "seed {seed:#x} target {target}");
                    }
                    other => panic!("solver disagreement (seed {seed:#x}, {target}): {other:?}"),
                }
            }
        }
    }
}
