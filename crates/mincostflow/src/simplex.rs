//! Network simplex for min-cost flow, the classical primal simplex
//! method specialised to spanning-tree bases (Dantzig; the implementation
//! follows the structure popularised by LEMON's `NetworkSimplex`).
//!
//! The successive-shortest-path solvers pay one Dijkstra — `O(m log n)`
//! or a bucket sweep — per augmenting path, and composition-shaped
//! layered graphs need hundreds of paths. Network simplex replaces the
//! per-path search with spanning-tree pivots whose cost is the tree
//! depth plus a bounded candidate scan, which is why it dominates
//! augmenting-path algorithms on dense-ish instances in practice.
//!
//! The flow-value problem is reduced to a min-cost *circulation* with
//! the same temporary `sink → source` super-arc used by
//! [`crate::CostScaling`] and [`crate::CapacityScaling`]. The simplex
//! itself runs on the residual representation:
//!
//! * A **basis** is a spanning tree of the graph plus an artificial
//!   root; every non-tree residual arc is implicitly at a bound (its
//!   residual capacity says which). Node potentials `π` make every tree
//!   arc's reduced cost zero.
//! * A residual arc with positive capacity and negative reduced cost is
//!   a profitable **entering arc**; pushing along it and back through
//!   the tree path between its endpoints is a cycle whose bottleneck
//!   determines the **leaving arc**. Pivots are selected with LEMON's
//!   block-search rule (scan `≈√m`-sized blocks, take the most negative
//!   candidate in the first non-empty block).
//! * Degenerate pivots (bottleneck zero) are unavoidable — the initial
//!   all-artificial basis is entirely degenerate — and are kept finite
//!   by Cunningham's strongly-feasible-basis tie-break: the leaving arc
//!   is the blocking arc *closest to the entering arc's tail* on the
//!   tail-side path, but *closest to the join* on the head-side path.
//! * When no entering arc exists, every real residual arc has `rc ≥ 0`,
//!   so no negative residual cycle exists and the circulation is
//!   optimal ([`crate::validate`]'s certificate).
//!
//! Artificial arcs (node ↔ root) start the tree but never carry flow:
//! the circulation has zero supplies, so every cycle through the root
//! crosses an artificial *down*-arc whose residual capacity is the
//! (zero) artificial flow, making the cycle's bottleneck zero. That
//! keeps them flow-free forever by induction, which in turn means they
//! can cost zero and be excluded from the entering-arc scan without
//! affecting the final — artificial-free — optimum: optimality only
//! needs `rc ≥ 0` on *real* residual arcs, since negative residual
//! cycles of the real network contain no artificial arc.

use crate::network::{FlowNetwork, NodeId};
use crate::{Infeasible, Solution};

const INF: i64 = i64::MAX / 4;
const NONE: u32 = u32::MAX;

/// Network simplex min-cost flow solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetworkSimplex;

impl NetworkSimplex {
    /// Routes up to `target` units from `source` to `sink` at minimum
    /// cost. Same contract as [`crate::SspSolver::solve`].
    pub fn solve(
        &self,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        target: i64,
    ) -> Result<Solution, Infeasible> {
        assert!(target >= 0, "negative flow target");
        assert!(source < net.num_nodes() && sink < net.num_nodes());
        if source == sink || target == 0 {
            return Ok(Solution { flow: 0, cost: 0 });
        }
        // Super-arc cost: strictly below minus the most expensive simple
        // path, so maximizing super-arc flow dominates all routing costs.
        let cost_mag: i64 = net.edges().map(|e| net.cost(e).abs()).sum::<i64>().max(1);
        let super_edge = net.add_edge(sink, source, target, -(cost_mag + 1));

        Simplex::new(net).run(net);

        let flow = net.flow_on(super_edge);
        net.pop_last_edge();
        let cost = net.total_cost();
        if flow == target {
            Ok(Solution { flow, cost })
        } else {
            Err(Infeasible {
                max_flow: flow,
                cost,
            })
        }
    }
}

/// Spanning-tree state of one simplex run. Node `n` is the artificial
/// root; arc ids `< 2m` are the network's residual arcs, ids `≥ 2m` are
/// artificial (node `v`'s pair is `2m + 2v` up / `2m + 2v + 1` down,
/// preserving `rev(a) == a ^ 1`).
struct Simplex {
    /// Parent of each node in the spanning tree (root's is `NONE`).
    parent: Vec<u32>,
    /// Residual arc id directed `v → parent[v]` (root's is `NONE`).
    pred: Vec<u32>,
    /// Depth from the root, for cycle (LCA) walks.
    depth: Vec<u32>,
    /// Node potentials; tree arcs have zero reduced cost.
    pi: Vec<i64>,
    /// Tree children, maintained incrementally for subtree traversal.
    children: Vec<Vec<u32>>,
    /// Tail node of each real residual arc.
    tails: Vec<u32>,
    /// Residual capacities of the artificial arcs (all flows stay zero;
    /// only the *down* arcs' zero capacity is ever load-bearing).
    art_cap: Vec<i64>,
    /// Entering-arc scan: next candidate position and block size.
    next_arc: usize,
    block: usize,
    /// Scratch for subtree traversal, path reversal, and cycle pushes.
    stack: Vec<u32>,
    path: Vec<(u32, u32)>,
    cycle: Vec<u32>,
}

impl Simplex {
    fn new(net: &mut FlowNetwork) -> Simplex {
        net.ensure_csr();
        let n = net.num_nodes();
        let root = n as u32;
        let m2 = net.arcs.len();
        let mut tails = vec![0u32; m2];
        for u in 0..n {
            let (lo, hi) = net.out_range(u);
            for i in lo..hi {
                tails[net.csr_arc(i)] = u as u32;
            }
        }
        let mut children = vec![Vec::new(); n + 1];
        children[n] = (0..n as u32).collect();
        let mut art_cap = vec![0i64; 2 * n];
        for v in 0..n {
            art_cap[2 * v] = INF; // v → root
        }
        // Artificial arcs cost zero, so all-zero potentials satisfy the
        // tree invariant and real arcs start at their plain reduced
        // costs. Zero cost is safe because artificial arcs never carry
        // flow (see the module docs) — they are scaffolding only.
        let pi = vec![0i64; n + 1];
        let mut parent = vec![root; n + 1];
        parent[n] = NONE;
        let mut pred: Vec<u32> = (0..n as u32).map(|v| m2 as u32 + 2 * v).collect();
        pred.push(NONE);
        let mut depth = vec![1u32; n + 1];
        depth[n] = 0;
        Simplex {
            parent,
            pred,
            depth,
            pi,
            children,
            tails,
            art_cap,
            next_arc: 0,
            block: 2 * (m2 as f64).sqrt() as usize + 1,
            stack: Vec::new(),
            path: Vec::new(),
            cycle: Vec::new(),
        }
    }

    #[inline]
    fn res_cap(&self, net: &FlowNetwork, a: u32) -> i64 {
        let a = a as usize;
        if a < self.tails.len() {
            net.arcs[a].cap
        } else {
            self.art_cap[a - self.tails.len()]
        }
    }

    #[inline]
    fn push(&mut self, net: &mut FlowNetwork, a: u32, amount: i64) {
        let a = a as usize;
        if a < self.tails.len() {
            net.push_unmirrored(a, amount);
        } else {
            let i = a - self.tails.len();
            self.art_cap[i] -= amount;
            self.art_cap[i ^ 1] += amount;
        }
    }

    fn run(&mut self, net: &mut FlowNetwork) {
        while let Some(e) = self.find_entering(net) {
            self.pivot(net, e);
        }
    }

    /// Block-search pivot rule: scan real residual arcs in id order,
    /// wrapping around; return the most negative reduced-cost arc of
    /// the first block that contains any candidate, or `None` when a
    /// full sweep finds nothing (optimality).
    fn find_entering(&mut self, net: &FlowNetwork) -> Option<u32> {
        let m2 = self.tails.len();
        let mut best: Option<u32> = None;
        let mut best_rc = 0i64;
        let mut scanned = 0usize;
        let mut counted = 0usize;
        let mut a = self.next_arc;
        while scanned < m2 {
            let arc = &net.arcs[a];
            if arc.cap > 0 {
                let rc = arc.cost + self.pi[self.tails[a] as usize] - self.pi[arc.to];
                if rc < best_rc {
                    best_rc = rc;
                    best = Some(a as u32);
                }
            }
            scanned += 1;
            counted += 1;
            a += 1;
            if a == m2 {
                a = 0;
            }
            if counted == self.block {
                counted = 0;
                if best.is_some() {
                    break;
                }
            }
        }
        self.next_arc = a;
        best
    }

    /// One simplex pivot on entering residual arc `e` (pushed along its
    /// direction): find the tree cycle, augment by its bottleneck, and
    /// re-hang the basis if a tree arc leaves.
    fn pivot(&mut self, net: &mut FlowNetwork, e: u32) {
        let first = self.tails[e as usize];
        let second = net.arcs[e as usize].to as u32;

        // Join: lowest common ancestor of the entering arc's endpoints.
        let (mut x, mut y) = (first, second);
        while self.depth[x as usize] > self.depth[y as usize] {
            x = self.parent[x as usize];
        }
        while self.depth[y as usize] > self.depth[x as usize] {
            y = self.parent[y as usize];
        }
        while x != y {
            x = self.parent[x as usize];
            y = self.parent[y as usize];
        }
        let join = x;

        // Bottleneck search around the cycle, recording the traversed
        // residual arcs so the augmentation doesn't re-walk the tree.
        // The asymmetric tie-breaks (`<` on the tail-side path, `<=` on
        // the head-side) keep the basis strongly feasible, which bounds
        // degenerate pivot runs.
        let mut delta = self.res_cap(net, e);
        let mut u_out = NONE;
        let mut result = 0u8;
        self.cycle.clear();
        self.cycle.push(e);
        let mut w = first;
        while w != join {
            // Cycle direction here is parent → w: the reverse residual.
            let a = self.pred[w as usize] ^ 1;
            let d = self.res_cap(net, a);
            self.cycle.push(a);
            if d < delta {
                delta = d;
                u_out = w;
                result = 1;
            }
            w = self.parent[w as usize];
        }
        let mut w = second;
        while w != join {
            // Cycle direction here is w → parent: the pred arc itself.
            let a = self.pred[w as usize];
            let d = self.res_cap(net, a);
            self.cycle.push(a);
            if d <= delta {
                delta = d;
                u_out = w;
                result = 2;
            }
            w = self.parent[w as usize];
        }

        if delta > 0 {
            for k in 0..self.cycle.len() {
                self.push(net, self.cycle[k], delta);
            }
        }

        if result == 0 {
            // The entering arc itself is the bottleneck: it saturates
            // and stays non-basic (the classic bound flip); no change
            // to the tree.
            return;
        }

        // The leaving arc is `pred[u_out]`; removing it cuts off the
        // subtree S containing u_in, which re-hangs below v_in through
        // the entering arc.
        let (u_in, v_in, in_arc) = if result == 1 {
            (first, second, e)
        } else {
            (second, first, e ^ 1)
        };
        // All of S shifts by the entering arc's reduced cost so it
        // becomes the zero of the new tree arc.
        let in_cost = net.arcs[in_arc as usize].cost;
        let sigma = -(in_cost + self.pi[u_in as usize] - self.pi[v_in as usize]);

        // Reverse the tree path u_in → u_out: each old parent becomes
        // the child of its old child. Recorded first (node, old pred),
        // then applied from u_out downward so every `children` lookup
        // still sees the pre-pivot relation it detaches.
        self.path.clear();
        let mut w = u_in;
        loop {
            self.path.push((w, self.pred[w as usize]));
            if w == u_out {
                break;
            }
            w = self.parent[w as usize];
        }
        for i in (0..self.path.len()).rev() {
            let (w, _) = self.path[i];
            let old_p = if i + 1 < self.path.len() {
                self.path[i + 1].0
            } else {
                self.parent[w as usize]
            };
            let (new_p, new_pred) = if i == 0 {
                (v_in, in_arc)
            } else {
                (self.path[i - 1].0, self.path[i - 1].1 ^ 1)
            };
            self.detach_child(old_p, w);
            self.parent[w as usize] = new_p;
            self.pred[w as usize] = new_pred;
            self.children[new_p as usize].push(w);
        }

        // Refresh depth and potential across the re-hung subtree.
        self.stack.clear();
        self.stack.push(u_in);
        while let Some(v) = self.stack.pop() {
            let p = self.parent[v as usize] as usize;
            self.depth[v as usize] = self.depth[p] + 1;
            self.pi[v as usize] += sigma;
            for &c in &self.children[v as usize] {
                self.stack.push(c);
            }
        }
    }

    #[inline]
    fn detach_child(&mut self, p: u32, w: u32) {
        let list = &mut self.children[p as usize];
        let idx = list.iter().position(|&c| c == w).expect("tree child");
        list.swap_remove(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssp::{SspSolver, SspVariant};

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 10, 5);
        let sol = NetworkSimplex.solve(&mut net, 0, 1, 7).unwrap();
        assert_eq!(sol, Solution { flow: 7, cost: 35 });
    }

    #[test]
    fn splits_across_parallel_routes() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 4, 1);
        net.add_edge(1, 3, 4, 1);
        net.add_edge(0, 2, 10, 10);
        net.add_edge(2, 3, 10, 10);
        let sol = NetworkSimplex.solve(&mut net, 0, 3, 6).unwrap();
        assert_eq!(sol.flow, 6);
        assert_eq!(sol.cost, 4 * 2 + 2 * 20);
    }

    #[test]
    fn infeasible_routes_max_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 3, 1);
        net.add_edge(1, 2, 2, 1);
        let err = NetworkSimplex.solve(&mut net, 0, 2, 5).unwrap_err();
        assert_eq!(err.max_flow, 2);
        assert_eq!(err.cost, 4);
    }

    #[test]
    fn negative_costs_handled() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5, -2);
        net.add_edge(1, 3, 5, 1);
        net.add_edge(0, 2, 5, 1);
        net.add_edge(2, 3, 5, 1);
        let sol = NetworkSimplex.solve(&mut net, 0, 3, 8).unwrap();
        assert_eq!(sol.flow, 8);
        assert_eq!(sol.cost, -5 + 3 * 2);
    }

    #[test]
    fn zero_capacity_graph_is_infeasible() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 0, 1);
        let err = NetworkSimplex.solve(&mut net, 0, 1, 1).unwrap_err();
        assert_eq!(err.max_flow, 0);
        assert_eq!(err.cost, 0);
    }

    #[test]
    fn flows_left_installed_are_consistent() {
        let mut net = FlowNetwork::new(4);
        let e1 = net.add_edge(0, 1, 4, 1);
        let e2 = net.add_edge(1, 3, 4, 1);
        net.add_edge(0, 2, 10, 10);
        net.add_edge(2, 3, 10, 10);
        let sol = NetworkSimplex.solve(&mut net, 0, 3, 6).unwrap();
        assert_eq!(net.flow_on(e1), 4);
        assert_eq!(net.flow_on(e2), 4);
        assert_eq!(net.total_cost(), sol.cost);
        assert!(crate::validate::check_flow(&net, 0, 3, sol.flow).is_empty());
        crate::validate::check_optimality(&net).unwrap();
    }

    #[test]
    fn agrees_with_ssp_on_random_grids() {
        // Deterministic xorshift instances; same generator as the
        // cost-scaling agreement test.
        let build = |seed: u64| {
            let mut net = FlowNetwork::new(16);
            let mut x = seed;
            let mut rnd = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for r in 0..4usize {
                for c in 0..4usize {
                    let v = r * 4 + c;
                    if c + 1 < 4 {
                        net.add_edge(v, v + 1, (rnd() % 9 + 1) as i64, (rnd() % 20) as i64);
                    }
                    if r + 1 < 4 {
                        net.add_edge(v, v + 4, (rnd() % 9 + 1) as i64, (rnd() % 20) as i64);
                    }
                }
            }
            net
        };
        for seed in [0xDEADBEEF, 0xC0FFEE, 0x5EED] {
            for target in [1, 3, 7, 50] {
                let mut a = build(seed);
                let mut b = build(seed);
                let sa = SspSolver::new(SspVariant::Dijkstra).solve(&mut a, 0, 15, target);
                let sb = NetworkSimplex.solve(&mut b, 0, 15, target);
                match (sa, sb) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y, "seed {seed:#x} target {target}"),
                    (Err(x), Err(y)) => {
                        assert_eq!(x.max_flow, y.max_flow, "seed {seed:#x} target {target}");
                        assert_eq!(x.cost, y.cost, "seed {seed:#x} target {target}");
                    }
                    other => panic!("solver disagreement (seed {seed:#x}, {target}): {other:?}"),
                }
            }
        }
    }
}
