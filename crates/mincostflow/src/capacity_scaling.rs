//! Capacity-scaling successive shortest paths (Edmonds & Karp — the
//! paper's reference [7]: "Theoretical improvements in algorithmic
//! efficiency for network flow problems", J. ACM 19(2), 1972).
//!
//! Plain SSP may perform `O(F)` augmentations (one per unit in the worst
//! case). Capacity scaling processes augmentations in phases of
//! decreasing scale `Δ`: within a phase only residual arcs of capacity
//! ≥ Δ are considered, so every augmentation moves at least Δ units and
//! the number of augmentations is `O(m log U)`.
//!
//! One subtlety: restricting arcs below Δ means a phase can leave flow
//! that is *not* minimum-cost with respect to the full residual graph —
//! small cheap arcs plus freshly created reverse arcs may even form
//! negative residual cycles. At every phase boundary we therefore (a)
//! cancel any negative residual cycles (Klein's step) and then (b)
//! recompute exact potentials over the full graph with Bellman–Ford, so
//! the next phase's Dijkstra sees valid reduced costs. The Δ = 1 phase
//! is then plain SSP and terminates with an exactly optimal flow.

use crate::network::{FlowNetwork, NodeId};
use crate::{Infeasible, Solution};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const INF: i64 = i64::MAX / 4;

/// Capacity-scaling min-cost flow solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct CapacityScaling;

impl CapacityScaling {
    /// Routes up to `target` units from `source` to `sink` at minimum
    /// cost. Same contract as [`crate::SspSolver::solve`].
    pub fn solve(
        &self,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        target: i64,
    ) -> Result<Solution, Infeasible> {
        assert!(target >= 0, "negative flow target");
        assert!(source < net.num_nodes() && sink < net.num_nodes());
        if source == sink || target == 0 {
            return Ok(Solution { flow: 0, cost: 0 });
        }
        let n = net.num_nodes();
        let max_cap = net
            .arcs
            .iter()
            .map(|a| a.cap)
            .max()
            .unwrap_or(0)
            .min(target);
        if max_cap <= 0 {
            return Err(Infeasible {
                max_flow: 0,
                cost: 0,
            });
        }
        // Largest power of two ≤ min(max capacity, target).
        let mut delta = 1i64 << (63 - max_cap.leading_zeros() as i64);
        let mut flow = 0i64;
        let mut cost = 0i64;
        let mut pot = vec![0i64; n];
        let mut dist = vec![INF; n];
        let mut prev_arc = vec![usize::MAX; n];

        while delta >= 1 {
            // Phase boundary: restore global optimality of the current
            // flow, then re-anchor potentials against the FULL residual
            // graph so the Δ-restricted Dijkstra's reduced costs stay
            // non-negative.
            cost += cancel_negative_cycles(net);
            bellman_ford_full(net, source, &mut pot);
            loop {
                if flow >= target {
                    // The last augmentation may have used a Δ-restricted
                    // (suboptimal) path; cancelling residual cycles
                    // restores exact optimality without changing the
                    // flow value (cycles are circulations).
                    cost += cancel_negative_cycles(net);
                    return Ok(Solution { flow, cost });
                }
                if !dijkstra_delta(net, source, delta, &pot, &mut dist, &mut prev_arc)
                    || dist[sink] >= INF
                {
                    break;
                }
                for v in 0..n {
                    if dist[v] < INF {
                        pot[v] += dist[v];
                    }
                }
                // Bottleneck ≥ Δ by construction, capped by demand.
                let mut bottleneck = target - flow;
                let mut v = sink;
                while v != source {
                    let a = prev_arc[v];
                    bottleneck = bottleneck.min(net.arcs[a].cap);
                    v = net.arcs[a ^ 1].to;
                }
                debug_assert!(bottleneck >= delta.min(target - flow));
                let mut v = sink;
                let mut path_cost = 0i64;
                while v != source {
                    let a = prev_arc[v];
                    path_cost += net.arcs[a].cost;
                    net.push(a, bottleneck);
                    v = net.arcs[a ^ 1].to;
                }
                flow += bottleneck;
                cost += bottleneck * path_cost;
            }
            delta /= 2;
        }
        cost += cancel_negative_cycles(net);
        if flow == target {
            Ok(Solution { flow, cost })
        } else {
            Err(Infeasible {
                max_flow: flow,
                cost,
            })
        }
    }
}

/// Dijkstra over reduced costs, ignoring residual arcs below `delta`.
fn dijkstra_delta(
    net: &FlowNetwork,
    source: NodeId,
    delta: i64,
    pot: &[i64],
    dist: &mut [i64],
    prev_arc: &mut [usize],
) -> bool {
    dist.fill(INF);
    prev_arc.fill(usize::MAX);
    dist[source] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0i64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &a in &net.adj[u] {
            let arc = &net.arcs[a];
            if arc.cap < delta {
                continue;
            }
            let rc = arc.cost + pot[u] - pot[arc.to];
            debug_assert!(rc >= 0, "negative reduced cost {rc} in Δ-phase");
            let nd = d + rc;
            if nd < dist[arc.to] {
                dist[arc.to] = nd;
                prev_arc[arc.to] = a;
                heap.push(Reverse((nd, arc.to)));
            }
        }
    }
    true
}

/// Cancels every negative-cost cycle in the residual graph by pushing
/// the bottleneck around it (Klein's algorithm step). Returns the total
/// cost change (≤ 0).
fn cancel_negative_cycles(net: &mut FlowNetwork) -> i64 {
    let n = net.num_nodes();
    let mut total_delta = 0i64;
    loop {
        // Bellman–Ford from a virtual source connected to every node.
        let mut dist = vec![0i64; n];
        let mut pred = vec![usize::MAX; n];
        let mut cycle_entry = None;
        for round in 0..n {
            let mut changed = false;
            for u in 0..n {
                for &a in &net.adj[u] {
                    let arc = &net.arcs[a];
                    if arc.cap > 0 && dist[u] + arc.cost < dist[arc.to] {
                        dist[arc.to] = dist[u] + arc.cost;
                        pred[arc.to] = a;
                        changed = true;
                        if round == n - 1 {
                            cycle_entry = Some(arc.to);
                        }
                    }
                }
            }
            if !changed {
                return total_delta;
            }
        }
        let Some(mut v) = cycle_entry else {
            return total_delta;
        };
        // Walk back n steps to land inside the cycle, then extract it.
        for _ in 0..n {
            v = net.arcs[pred[v] ^ 1].to;
        }
        let start = v;
        let mut arcs = Vec::new();
        loop {
            let a = pred[v];
            arcs.push(a);
            v = net.arcs[a ^ 1].to;
            if v == start {
                break;
            }
        }
        let bottleneck = arcs.iter().map(|&a| net.arcs[a].cap).min().unwrap();
        debug_assert!(bottleneck > 0);
        let cycle_cost: i64 = arcs.iter().map(|&a| net.arcs[a].cost).sum();
        debug_assert!(cycle_cost < 0, "walked a non-negative cycle");
        for &a in &arcs {
            net.push(a, bottleneck);
        }
        total_delta += cycle_cost * bottleneck;
    }
}

/// Bellman–Ford over the full residual graph (all arcs with `cap > 0`),
/// writing exact distances into `pot` (unreachable nodes keep 0).
fn bellman_ford_full(net: &FlowNetwork, source: NodeId, pot: &mut [i64]) {
    let n = net.num_nodes();
    let mut dist = vec![INF; n];
    dist[source] = 0;
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            if dist[u] >= INF {
                continue;
            }
            for &a in &net.adj[u] {
                let arc = &net.arcs[a];
                if arc.cap > 0 && dist[u] + arc.cost < dist[arc.to] {
                    dist[arc.to] = dist[u] + arc.cost;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for v in 0..n {
        pot[v] = if dist[v] < INF { dist[v] } else { 0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssp::{SspSolver, SspVariant};

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 10, 5);
        let sol = CapacityScaling.solve(&mut net, 0, 1, 7).unwrap();
        assert_eq!(sol, Solution { flow: 7, cost: 35 });
    }

    #[test]
    fn splits_optimally() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 4, 1);
        net.add_edge(1, 3, 4, 1);
        net.add_edge(0, 2, 10, 10);
        net.add_edge(2, 3, 10, 10);
        let sol = CapacityScaling.solve(&mut net, 0, 3, 6).unwrap();
        assert_eq!(sol.flow, 6);
        assert_eq!(sol.cost, 4 * 2 + 2 * 20);
    }

    #[test]
    fn infeasible_reports_max() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 3, 1);
        net.add_edge(1, 2, 2, 1);
        let err = CapacityScaling.solve(&mut net, 0, 2, 5).unwrap_err();
        assert_eq!(err.max_flow, 2);
        assert_eq!(err.cost, 4);
    }

    #[test]
    fn wide_capacity_spread_exercises_phases() {
        // Capacities spanning 1..=1024 force ~10 scaling phases.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 1024, 1);
        net.add_edge(1, 5, 1000, 2);
        net.add_edge(0, 2, 128, 1);
        net.add_edge(2, 5, 100, 3);
        net.add_edge(0, 3, 16, 1);
        net.add_edge(3, 5, 10, 4);
        net.add_edge(0, 4, 2, 1);
        net.add_edge(4, 5, 1, 50);
        let mut reference = net.clone();
        let a = CapacityScaling.solve(&mut net, 0, 5, 1111).unwrap();
        let b = SspSolver::new(SspVariant::Dijkstra)
            .solve(&mut reference, 0, 5, 1111)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_with_ssp_on_random_grids() {
        let build = |seed: u64| {
            let mut net = FlowNetwork::new(16);
            let mut x = seed | 1;
            let mut rnd = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for r in 0..4usize {
                for c in 0..4usize {
                    let v = r * 4 + c;
                    if c + 1 < 4 {
                        net.add_edge(v, v + 1, (rnd() % 100 + 1) as i64, (rnd() % 20) as i64);
                    }
                    if r + 1 < 4 {
                        net.add_edge(v, v + 4, (rnd() % 100 + 1) as i64, (rnd() % 20) as i64);
                    }
                }
            }
            net
        };
        for seed in [3, 99, 1234] {
            for target in [1i64, 17, 60, 250] {
                let mut a = build(seed);
                let mut b = build(seed);
                let ra = CapacityScaling.solve(&mut a, 0, 15, target);
                let rb = SspSolver::new(SspVariant::Dijkstra).solve(&mut b, 0, 15, target);
                match (ra, rb) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y, "seed {seed} target {target}"),
                    (Err(x), Err(y)) => {
                        assert_eq!(x.max_flow, y.max_flow, "seed {seed} target {target}");
                        assert_eq!(x.cost, y.cost, "seed {seed} target {target}");
                    }
                    other => panic!("disagreement at seed {seed} target {target}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn zero_capacity_graph_is_infeasible() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 0, 1);
        let err = CapacityScaling.solve(&mut net, 0, 1, 1).unwrap_err();
        assert_eq!(err.max_flow, 0);
    }
}
