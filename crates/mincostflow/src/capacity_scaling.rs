//! Capacity-scaling min-cost flow (Edmonds & Karp — the paper's
//! reference [7]: "Theoretical improvements in algorithmic efficiency
//! for network flow problems", J. ACM 19(2), 1972), implemented in the
//! excess-scaling form of Ahuja–Magnanti–Orlin (§10.2).
//!
//! Plain SSP may perform `O(F)` augmentations (one per unit in the worst
//! case). Capacity scaling processes augmentations in phases of
//! decreasing scale `Δ`: within a phase only residual arcs of capacity
//! ≥ Δ are considered, so every augmentation moves at least Δ units and
//! the number of augmentations is `O(m log U)`.
//!
//! The flow-value problem is reduced to a min-cost *circulation* exactly
//! as [`crate::CostScaling`] does: a temporary `sink → source` super-arc
//! with capacity `target` and a cost below minus any simple path's total
//! makes the optimal circulation route as much flow as possible through
//! it. The circulation is solved phase by phase while maintaining the
//! invariant that **every residual arc of the Δ-graph has non-negative
//! reduced cost**:
//!
//! 1. At each phase start, residual arcs with `cap ≥ Δ` and negative
//!    reduced cost are *saturated* (pushed to capacity). This restores
//!    the invariant for arcs newly visible at this scale — the super-arc
//!    itself enters this way, seeding `target` units of excess at the
//!    source — at the price of node imbalances (excesses and deficits).
//! 2. Imbalances are drained by successive shortest paths: a Dijkstra
//!    over reduced costs in the Δ-graph from an excess node to the first
//!    settled deficit node, a potential fold, and an augmentation of at
//!    least Δ units.
//!
//! Because reduced costs never go negative on the arcs the phase can
//! see, no negative residual cycle ever forms and no cycle-cancelling
//! repair step is needed (a previous implementation cancelled cycles
//! with one `O(n·m)` Bellman–Ford per phase boundary, which made this
//! solver ~100x slower than cost scaling on 6×24 layered graphs). The
//! Δ = 1 phase sees the whole residual graph, and flow decomposition of
//! the pseudoflow guarantees every leftover excess then reaches a
//! deficit, so the algorithm always terminates with a genuine — and by
//! the invariant, optimal — circulation.

use crate::network::{FlowNetwork, NodeId};
use crate::{Infeasible, Solution};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const INF: i64 = i64::MAX / 4;

/// Capacity-scaling min-cost flow solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct CapacityScaling;

/// Scratch buffers shared by the phases of one solve; allocated once
/// per [`CapacityScaling::solve`] call, never per augmentation.
struct Scratch {
    pot: Vec<i64>,
    dist: Vec<i64>,
    prev_arc: Vec<usize>,
    heap: BinaryHeap<Reverse<(i64, u32)>>,
    excess: Vec<i64>,
}

impl CapacityScaling {
    /// Routes up to `target` units from `source` to `sink` at minimum
    /// cost. Same contract as [`crate::SspSolver::solve`].
    pub fn solve(
        &self,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        target: i64,
    ) -> Result<Solution, Infeasible> {
        assert!(target >= 0, "negative flow target");
        assert!(source < net.num_nodes() && sink < net.num_nodes());
        if source == sink || target == 0 {
            return Ok(Solution { flow: 0, cost: 0 });
        }
        // Super-arc cost: strictly below minus the most expensive simple
        // path, so maximizing super-arc flow dominates all routing costs.
        let cost_mag: i64 = net.edges().map(|e| net.cost(e).abs()).sum::<i64>().max(1);
        let super_edge = net.add_edge(sink, source, target, -(cost_mag + 1));

        run_circulation(net);

        let flow = net.flow_on(super_edge);
        net.pop_last_edge();
        let cost = net.total_cost();
        if flow == target {
            Ok(Solution { flow, cost })
        } else {
            Err(Infeasible {
                max_flow: flow,
                cost,
            })
        }
    }
}

/// Solves min-cost circulation on `net` in place by capacity scaling.
fn run_circulation(net: &mut FlowNetwork) {
    net.ensure_csr();
    let n = net.num_nodes();
    let max_cap = net.arcs.iter().map(|a| a.cap).max().unwrap_or(0);
    if max_cap <= 0 {
        return;
    }
    let mut s = Scratch {
        pot: vec![0; n],
        dist: vec![INF; n],
        prev_arc: vec![usize::MAX; n],
        heap: BinaryHeap::new(),
        excess: vec![0; n],
    };
    // Largest power of two ≤ the largest residual capacity.
    let mut delta = 1i64 << (63 - max_cap.leading_zeros());
    while delta >= 1 {
        saturate_negative(net, delta, &mut s);
        drain_excess(net, delta, &mut s);
        delta /= 2;
    }
    debug_assert!(
        s.excess.iter().all(|&e| e == 0),
        "Δ = 1 phase must drain every imbalance"
    );
}

/// Pushes every residual arc of the Δ-graph with negative reduced cost
/// to capacity. Restores the phase invariant (`rc ≥ 0` on the Δ-graph)
/// at the price of node imbalances, recorded in `s.excess`.
fn saturate_negative(net: &mut FlowNetwork, delta: i64, s: &mut Scratch) {
    for a in 0..net.arcs.len() {
        let arc = &net.arcs[a];
        if arc.cap < delta {
            continue;
        }
        let u = net.arc_tail(a);
        let to = arc.to;
        if arc.cost + s.pot[u] - s.pot[to] < 0 {
            let r = arc.cap;
            net.push(a, r);
            s.excess[u] -= r;
            s.excess[to] += r;
        }
    }
}

/// Routes imbalance from excess nodes (`excess ≥ Δ`) to deficit nodes
/// (`excess ≤ −Δ`) along shortest Δ-graph paths until no such pair is
/// connected; smaller leftovers roll over to the next phase.
fn drain_excess(net: &mut FlowNetwork, delta: i64, s: &mut Scratch) {
    let n = net.num_nodes();
    loop {
        let mut progressed = false;
        for v in 0..n {
            while s.excess[v] >= delta {
                let Some(t) = dijkstra_to_deficit(net, v, delta, s) else {
                    // No deficit reachable from `v` at this scale; other
                    // excess nodes may still drain (and may reconnect
                    // `v`, which the outer loop retries).
                    break;
                };
                // Fold distances into potentials, capped at the first
                // settled deficit's distance (early exit leaves far
                // nodes unsettled; the cap keeps every Δ-graph arc's
                // reduced cost ≥ 0 — settled nodes have exact dist ≤ dt
                // and every other label is ≥ dt).
                let dt = s.dist[t];
                for u in 0..n {
                    s.pot[u] += s.dist[u].min(dt);
                }
                // Augment as much as the endpoints and the path allow —
                // at least Δ by construction (Δ-graph caps are ≥ Δ and
                // both endpoint imbalances are ≥ Δ in magnitude).
                let mut amt = s.excess[v].min(-s.excess[t]);
                let mut w = t;
                while w != v {
                    let a = s.prev_arc[w];
                    amt = amt.min(net.arcs[a].cap);
                    w = net.arc_tail(a);
                }
                debug_assert!(amt >= delta);
                let mut w = t;
                while w != v {
                    let a = s.prev_arc[w];
                    net.push(a, amt);
                    w = net.arc_tail(a);
                }
                s.excess[v] -= amt;
                s.excess[t] += amt;
                progressed = true;
            }
        }
        if !progressed {
            return;
        }
    }
}

/// Dijkstra over reduced costs from `from`, ignoring residual arcs below
/// `delta` and stopping at the first settled node with `excess ≤ −Δ`.
/// Returns that node, or `None` when no deficit is reachable.
fn dijkstra_to_deficit(
    net: &FlowNetwork,
    from: NodeId,
    delta: i64,
    s: &mut Scratch,
) -> Option<NodeId> {
    let Scratch {
        pot,
        dist,
        prev_arc,
        heap,
        excess,
    } = s;
    dist.fill(INF);
    prev_arc.fill(usize::MAX);
    dist[from] = 0;
    heap.clear();
    heap.push(Reverse((0i64, from as u32)));
    while let Some(Reverse((d, u))) = heap.pop() {
        let u = u as usize;
        if d > dist[u] {
            continue;
        }
        if excess[u] <= -delta {
            heap.clear();
            return Some(u);
        }
        let (lo, hi) = net.out_range(u);
        let base = d + pot[u];
        for i in lo..hi {
            let ca = &net.csr_arcs[i];
            if ca.cap < delta {
                continue;
            }
            let to = ca.to as usize;
            let nd = base + ca.cost - pot[to];
            debug_assert!(
                nd >= d,
                "negative reduced cost in Δ-phase at CSR position {i}"
            );
            if nd < dist[to] {
                dist[to] = nd;
                prev_arc[to] = net.csr[i] as usize;
                heap.push(Reverse((nd, to as u32)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssp::{SspSolver, SspVariant};

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 10, 5);
        let sol = CapacityScaling.solve(&mut net, 0, 1, 7).unwrap();
        assert_eq!(sol, Solution { flow: 7, cost: 35 });
    }

    #[test]
    fn splits_optimally() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 4, 1);
        net.add_edge(1, 3, 4, 1);
        net.add_edge(0, 2, 10, 10);
        net.add_edge(2, 3, 10, 10);
        let sol = CapacityScaling.solve(&mut net, 0, 3, 6).unwrap();
        assert_eq!(sol.flow, 6);
        assert_eq!(sol.cost, 4 * 2 + 2 * 20);
    }

    #[test]
    fn infeasible_reports_max() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 3, 1);
        net.add_edge(1, 2, 2, 1);
        let err = CapacityScaling.solve(&mut net, 0, 2, 5).unwrap_err();
        assert_eq!(err.max_flow, 2);
        assert_eq!(err.cost, 4);
    }

    #[test]
    fn negative_costs_handled() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5, -2);
        net.add_edge(1, 3, 5, 1);
        net.add_edge(0, 2, 5, 1);
        net.add_edge(2, 3, 5, 1);
        let sol = CapacityScaling.solve(&mut net, 0, 3, 8).unwrap();
        assert_eq!(sol.flow, 8);
        assert_eq!(sol.cost, -5 + 3 * 2);
    }

    #[test]
    fn wide_capacity_spread_exercises_phases() {
        // Capacities spanning 1..=1024 force ~10 scaling phases.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 1024, 1);
        net.add_edge(1, 5, 1000, 2);
        net.add_edge(0, 2, 128, 1);
        net.add_edge(2, 5, 100, 3);
        net.add_edge(0, 3, 16, 1);
        net.add_edge(3, 5, 10, 4);
        net.add_edge(0, 4, 2, 1);
        net.add_edge(4, 5, 1, 50);
        let mut reference = net.clone();
        let a = CapacityScaling.solve(&mut net, 0, 5, 1111).unwrap();
        let b = SspSolver::new(SspVariant::Dijkstra)
            .solve(&mut reference, 0, 5, 1111)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_with_ssp_on_random_grids() {
        let build = |seed: u64| {
            let mut net = FlowNetwork::new(16);
            let mut x = seed | 1;
            let mut rnd = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for r in 0..4usize {
                for c in 0..4usize {
                    let v = r * 4 + c;
                    if c + 1 < 4 {
                        net.add_edge(v, v + 1, (rnd() % 100 + 1) as i64, (rnd() % 20) as i64);
                    }
                    if r + 1 < 4 {
                        net.add_edge(v, v + 4, (rnd() % 100 + 1) as i64, (rnd() % 20) as i64);
                    }
                }
            }
            net
        };
        for seed in [3, 99, 1234] {
            for target in [1i64, 17, 60, 250] {
                let mut a = build(seed);
                let mut b = build(seed);
                let ra = CapacityScaling.solve(&mut a, 0, 15, target);
                let rb = SspSolver::new(SspVariant::Dijkstra).solve(&mut b, 0, 15, target);
                match (ra, rb) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y, "seed {seed} target {target}"),
                    (Err(x), Err(y)) => {
                        assert_eq!(x.max_flow, y.max_flow, "seed {seed} target {target}");
                        assert_eq!(x.cost, y.cost, "seed {seed} target {target}");
                    }
                    other => panic!("disagreement at seed {seed} target {target}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn zero_capacity_graph_is_infeasible() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 0, 1);
        let err = CapacityScaling.solve(&mut net, 0, 1, 1).unwrap_err();
        assert_eq!(err.max_flow, 0);
    }
}
