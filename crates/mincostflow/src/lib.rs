//! Minimum-cost flow solvers for RASC's rate-splitting composition.
//!
//! RASC (paper §3.5) reduces per-substream component selection + rate
//! assignment to a minimum-cost flow problem: edge capacities encode the
//! maximum ingest rate of candidate hosts, edge costs encode their observed
//! drop ratios, and the required flow value is the substream's rate
//! requirement. This crate implements that machinery from scratch:
//!
//! * [`FlowNetwork`] — a residual-graph representation with integer
//!   capacities and costs over a flat CSR arc index,
//! * [`SspSolver`] — successive shortest paths, in three variants: SPFA
//!   (Bellman–Ford queue; reference implementation, handles negative costs),
//!   Dijkstra with Johnson potentials (the paper's references [7, 10]), and
//!   Dial's bucket-queue Dijkstra (the fast path when arc costs are small
//!   bounded integers, as the composer's scaled costs are),
//! * [`FlowSolver`] — a retained solver wrapper that keeps scratch buffers
//!   and warm-starts potentials across a sequence of structurally similar
//!   solves (the composer's per-substream graphs),
//! * [`CostScaling`] — Goldberg's cost-scaling push–relabel algorithm
//!   (reference [11]),
//! * [`CapacityScaling`] — Edmonds–Karp capacity-scaling SSP in the
//!   excess-scaling form (reference [7]),
//! * [`NetworkSimplex`] — spanning-tree primal simplex with block-search
//!   pivoting, the fastest solver on large composition graphs,
//! * [`dinic_max_flow`] — Dinic's max-flow for feasibility pre-checks,
//! * [`validate`] — independent certification of feasibility and optimality
//!   (flow conservation, capacity bounds, no negative residual cycle).
//!
//! All quantities are `i64`. Callers working in fractional rates scale to
//! integer units (RASC uses milli-data-units/second) before solving.
//!
//! # Example
//!
//! ```
//! use mincostflow::{FlowNetwork, SspSolver, SspVariant};
//!
//! // Two parallel routes from 0 to 3; the cheap one has limited capacity,
//! // so an optimal flow of 15 splits 10 cheap + 5 expensive.
//! let mut net = FlowNetwork::new(4);
//! let cheap_a = net.add_edge(0, 1, 10, 1);
//! let cheap_b = net.add_edge(1, 3, 10, 1);
//! let dear_a = net.add_edge(0, 2, 20, 4);
//! let dear_b = net.add_edge(2, 3, 20, 4);
//! let sol = SspSolver::new(SspVariant::Dijkstra)
//!     .solve(&mut net, 0, 3, 15)
//!     .expect("feasible");
//! assert_eq!(sol.flow, 15);
//! assert_eq!(sol.cost, 10 * 2 + 5 * 8);
//! assert_eq!(net.flow_on(cheap_a), 10);
//! assert_eq!(net.flow_on(cheap_b), 10);
//! assert_eq!(net.flow_on(dear_a), 5);
//! assert_eq!(net.flow_on(dear_b), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacity_scaling;
mod cost_scaling;
mod dinic;
mod network;
mod repair;
mod simplex;
mod ssp;
pub mod validate;

pub use capacity_scaling::CapacityScaling;
pub use cost_scaling::CostScaling;
pub use dinic::dinic_max_flow;
pub use network::{EdgeId, FlowNetwork, NodeId};
pub use repair::{RepairOutcome, RepairTier};
pub use simplex::{NetworkSimplex, SimplexBasis};
pub use ssp::{SspSolver, SspVariant};

/// Outcome of a successful min-cost flow solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Solution {
    /// Flow value actually routed (equals the request when feasible).
    pub flow: i64,
    /// Total cost of the routed flow (sum of `flow_e * cost_e`).
    pub cost: i64,
}

/// Error returned when the requested flow value cannot be routed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Infeasible {
    /// The maximum flow value that *was* routable (left in the network).
    pub max_flow: i64,
    /// Cost of that partial routing.
    pub cost: i64,
}

impl std::fmt::Display for Infeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requested flow infeasible; at most {} routable (cost {})",
            self.max_flow, self.cost
        )
    }
}

impl std::error::Error for Infeasible {}

/// Solver selection for [`min_cost_flow`] and [`FlowSolver`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Algorithm {
    /// Successive shortest paths with SPFA (reference; negative costs OK).
    SpfaSsp,
    /// Successive shortest paths with binary-heap Dijkstra + potentials.
    DijkstraSsp,
    /// Successive shortest paths with Dial's bucket-queue Dijkstra +
    /// potentials (default: fastest on the composer's bounded-cost
    /// graphs; falls back to the heap per-path on wide cost spans).
    #[default]
    DialSsp,
    /// Goldberg's cost-scaling push–relabel.
    CostScaling,
    /// Edmonds–Karp capacity-scaling SSP (the paper's reference [7]).
    CapacityScaling,
    /// Network simplex (spanning-tree pivots; fastest on the large
    /// layered graphs, where it avoids per-path shortest-path searches).
    NetworkSimplex,
}

/// A retained min-cost-flow solver.
///
/// Holding one `FlowSolver` across a sequence of solves keeps every
/// scratch buffer allocated between calls and — for the SSP variants —
/// carries Johnson potentials from one solve to the next: the snapshot
/// taken after a solve's first shortest path is revalidated in one O(m)
/// scan against the next graph and reused when still feasible, which is
/// the common case for the composer's per-substream graphs (rebuilt in
/// the same arena with mildly shifted costs/capacities). Warm starts
/// never change `(flow, cost)` results; see [`SspSolver`] for why.
#[derive(Clone, Debug, Default)]
pub struct FlowSolver {
    algorithm: Algorithm,
    ssp: ssp::SspScratch,
    basis: SimplexBasis,
}

impl FlowSolver {
    /// Creates a retained solver for the given algorithm.
    pub fn new(algorithm: Algorithm) -> Self {
        FlowSolver {
            algorithm,
            ssp: Default::default(),
            basis: Default::default(),
        }
    }

    /// The algorithm this solver dispatches to.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Drops the warm-start potential snapshot (buffers stay allocated).
    /// Call when switching to an unrelated family of graphs; purely a
    /// performance hint, never needed for correctness.
    pub fn forget(&mut self) {
        self.ssp.forget();
        self.basis.invalidate();
    }

    /// The node potentials certifying the last simplex solve or
    /// warm-basis repair (see [`SimplexBasis::potentials`]); the
    /// independent dual-feasibility checker
    /// [`validate::check_certificate`] consumes them. `None` when no
    /// valid basis is retained (non-simplex algorithm, or a fallback
    /// tier mutated the flows since).
    pub fn certificate_potentials(&self) -> Option<&[i64]> {
        self.basis.potentials()
    }

    /// Routes up to `target` units from `source` to `sink` at minimum
    /// cost. Same contract as [`min_cost_flow`].
    pub fn solve(
        &mut self,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        target: i64,
    ) -> Result<Solution, Infeasible> {
        // Any non-simplex solve installs flows behind the retained
        // basis's back, so only the simplex arm keeps it alive.
        let variant = match self.algorithm {
            Algorithm::SpfaSsp => SspVariant::Spfa,
            Algorithm::DijkstraSsp => SspVariant::Dijkstra,
            Algorithm::DialSsp => SspVariant::Dial,
            Algorithm::CostScaling => {
                self.basis.invalidate();
                return CostScaling::default().solve(net, source, sink, target);
            }
            Algorithm::CapacityScaling => {
                self.basis.invalidate();
                return CapacityScaling.solve(net, source, sink, target);
            }
            Algorithm::NetworkSimplex => {
                return NetworkSimplex.solve_with(&mut self.basis, net, source, sink, target);
            }
        };
        self.basis.invalidate();
        SspSolver::new(variant).solve_with(&mut self.ssp, net, source, sink, target)
    }

    /// Disables every edge in `dead` and re-routes the flow they
    /// carried, trying the repair ladder top-down (see [`RepairTier`]):
    /// warm-basis simplex re-pivoting when a retained basis matches the
    /// network, else the phased primal–dual path warm-started from the
    /// potentials the preceding [`solve`](Self::solve) left behind,
    /// else SPFA. Every tier leaves a flow that is exactly min-cost for
    /// its value (see the `repair` module docs); a non-zero
    /// [`RepairOutcome::shortfall`] means the damaged network cannot
    /// carry the previous value and the caller should re-solve.
    pub fn repair_deletions(&mut self, net: &mut FlowNetwork, dead: &[EdgeId]) -> RepairOutcome {
        if let Some(out) = self.basis.repair_deletions(net, dead) {
            return out;
        }
        self.basis.invalidate();
        repair::repair_deletions(&mut self.ssp, net, dead)
    }

    /// Cuts edge `e`'s capacity to `new_cap` (at most its current
    /// capacity) and re-routes any flow above the new bound through the
    /// same repair ladder as [`repair_deletions`](Self::repair_deletions):
    /// a NIC degradation is a capacity cut, a crash is a cut to zero.
    pub fn cut_capacity(
        &mut self,
        net: &mut FlowNetwork,
        e: EdgeId,
        new_cap: i64,
    ) -> RepairOutcome {
        if let Some(out) = self.basis.cut_capacity(net, e, new_cap) {
            return out;
        }
        self.basis.invalidate();
        let (u, v) = net.endpoints(e);
        let cost = net.cost(e);
        let drained = net.reduce_capacity(e, new_cap);
        let mut out = repair::repair(&mut self.ssp, net, &[(u, drained)], &[(v, drained)]);
        out.cost_delta -= drained * cost;
        out
    }

    /// Re-prices edge `e` to `new_cost` and restores min-cost
    /// optimality at the unchanged flow value by warm-basis re-pivoting
    /// with a localized dual update. Unlike the balance repairs this
    /// has no augmenting-path fallback — a price change can leave
    /// negative residual cycles, which only the basis tier (or a cold
    /// re-solve) removes — so `None` means the price was applied but
    /// the flow may now be suboptimal and the caller must re-solve.
    pub fn reprice_edge(
        &mut self,
        net: &mut FlowNetwork,
        e: EdgeId,
        new_cost: i64,
    ) -> Option<RepairOutcome> {
        let old_cost = net.cost(e);
        net.set_cost(e, new_cost);
        let out = self.basis.reprice(net, e, old_cost);
        if out.is_none() {
            self.basis.invalidate();
        }
        out
    }

    /// Restores balance to a pseudo-flow: routes `min(Σ excess, Σ deficit)`
    /// units from `excess` nodes to `deficit` nodes along successive
    /// shortest residual paths. The general primitive behind
    /// [`repair_deletions`](Self::repair_deletions),
    /// [`increase_flow`](Self::increase_flow), and
    /// [`decrease_flow`](Self::decrease_flow).
    pub fn repair_imbalance(
        &mut self,
        net: &mut FlowNetwork,
        excess: &[(NodeId, i64)],
        deficit: &[(NodeId, i64)],
    ) -> RepairOutcome {
        // Arbitrary excess/deficit pairings have no slack-arc encoding;
        // the augmenting-path tiers mutate flows, so the basis goes.
        self.basis.invalidate();
        repair::repair(&mut self.ssp, net, excess, deficit)
    }

    /// Raises the installed `source → sink` flow by `delta` at minimum
    /// added cost, without re-solving. Equivalent in cost to a cold solve
    /// at the higher target when it completes.
    pub fn increase_flow(
        &mut self,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        delta: i64,
    ) -> RepairOutcome {
        if let Some(out) = self.basis.increase_flow(net, source, sink, delta) {
            return out;
        }
        self.basis.invalidate();
        repair::repair(&mut self.ssp, net, &[(source, delta)], &[(sink, delta)])
    }

    /// Lowers the installed `source → sink` flow by `delta`, cancelling
    /// the most expensive routed paths first (augmentation runs backwards
    /// through residual arcs). Equivalent in cost to a cold solve at the
    /// lower target when it completes.
    pub fn decrease_flow(
        &mut self,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        delta: i64,
    ) -> RepairOutcome {
        if let Some(out) = self.basis.decrease_flow(net, source, sink, delta) {
            return out;
        }
        self.basis.invalidate();
        repair::repair(&mut self.ssp, net, &[(sink, delta)], &[(source, delta)])
    }
}

/// Routes `target` units of flow from `source` to `sink` at minimum cost,
/// using the selected algorithm. On success the flows are left installed in
/// `net` (query with [`FlowNetwork::flow_on`]). On infeasibility the network
/// holds a maximum (but still min-cost) routing and the error reports it.
pub fn min_cost_flow(
    net: &mut FlowNetwork,
    source: NodeId,
    sink: NodeId,
    target: i64,
    algorithm: Algorithm,
) -> Result<Solution, Infeasible> {
    FlowSolver::new(algorithm).solve(net, source, sink, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_dispatches_all_algorithms() {
        for alg in [
            Algorithm::SpfaSsp,
            Algorithm::DijkstraSsp,
            Algorithm::DialSsp,
            Algorithm::CostScaling,
            Algorithm::CapacityScaling,
            Algorithm::NetworkSimplex,
        ] {
            let mut net = FlowNetwork::new(2);
            net.add_edge(0, 1, 5, 3);
            let sol = min_cost_flow(&mut net, 0, 1, 5, alg).unwrap();
            assert_eq!(sol, Solution { flow: 5, cost: 15 }, "{alg:?}");
        }
    }

    #[test]
    fn infeasible_reports_max_flow() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5, 1);
        let err = min_cost_flow(&mut net, 0, 1, 9, Algorithm::default()).unwrap_err();
        assert_eq!(err.max_flow, 5);
        assert_eq!(err.cost, 5);
        assert!(err.to_string().contains("at most 5"));
    }
}
