//! Dinic's max-flow algorithm.
//!
//! Used by RASC as a fast feasibility pre-check ("can this substream's rate
//! be carried at all?") before the min-cost solve, and by the validators as
//! an independent oracle for maximum routable flow.

use crate::network::{FlowNetwork, NodeId};
use std::collections::VecDeque;

/// Computes a maximum flow from `source` to `sink`, bounded by `limit`
/// (pass `i64::MAX` for the true max flow). Flows are installed in `net`;
/// the return value is the total routed.
pub fn dinic_max_flow(net: &mut FlowNetwork, source: NodeId, sink: NodeId, limit: i64) -> i64 {
    assert!(source < net.num_nodes() && sink < net.num_nodes());
    if source == sink || limit <= 0 {
        return 0;
    }
    net.ensure_csr();
    let n = net.num_nodes();
    let mut level = vec![u32::MAX; n];
    let mut iter = vec![0usize; n];
    let mut total = 0i64;

    while total < limit {
        // BFS: build level graph.
        level.fill(u32::MAX);
        level[source] = 0;
        let mut q = VecDeque::new();
        q.push_back(source);
        while let Some(u) = q.pop_front() {
            for &a in net.out_arcs(u) {
                let arc = &net.arcs[a as usize];
                if arc.cap > 0 && level[arc.to] == u32::MAX {
                    level[arc.to] = level[u] + 1;
                    q.push_back(arc.to);
                }
            }
        }
        if level[sink] == u32::MAX {
            break;
        }
        // DFS blocking flow with the current-arc optimization.
        iter.fill(0);
        loop {
            let pushed = dfs(net, source, sink, limit - total, &level, &mut iter);
            if pushed == 0 {
                break;
            }
            total += pushed;
            if total >= limit {
                break;
            }
        }
    }
    total
}

fn dfs(
    net: &mut FlowNetwork,
    u: NodeId,
    sink: NodeId,
    up_to: i64,
    level: &[u32],
    iter: &mut [usize],
) -> i64 {
    if u == sink {
        return up_to;
    }
    let (start, end) = net.out_range(u);
    while iter[u] < end - start {
        let a = net.csr_arc(start + iter[u]);
        let (to, cap) = {
            let arc = &net.arcs[a];
            (arc.to, arc.cap)
        };
        if cap > 0 && level[to] == level[u] + 1 {
            let d = dfs(net, to, sink, up_to.min(cap), level, iter);
            if d > 0 {
                net.push(a, d);
                return d;
            }
        }
        iter[u] += 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4, 0);
        net.add_edge(1, 2, 7, 0);
        assert_eq!(dinic_max_flow(&mut net, 0, 2, i64::MAX), 4);
    }

    #[test]
    fn classic_diamond() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10, 0);
        net.add_edge(0, 2, 10, 0);
        net.add_edge(1, 3, 10, 0);
        net.add_edge(2, 3, 10, 0);
        net.add_edge(1, 2, 1, 0);
        assert_eq!(dinic_max_flow(&mut net, 0, 3, i64::MAX), 20);
    }

    #[test]
    fn respects_limit() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 100, 0);
        assert_eq!(dinic_max_flow(&mut net, 0, 1, 30), 30);
        assert_eq!(net.flow_on(e), 30);
    }

    #[test]
    fn zero_when_disconnected() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, 0);
        assert_eq!(dinic_max_flow(&mut net, 0, 2, i64::MAX), 0);
    }

    #[test]
    fn source_equals_sink_is_zero() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5, 0);
        assert_eq!(dinic_max_flow(&mut net, 0, 0, i64::MAX), 0);
    }

    #[test]
    fn needs_rerouting_through_residuals() {
        // The textbook case where a greedy augmenting path must be undone
        // via the residual arc of the middle edge.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1, 0);
        net.add_edge(0, 2, 1, 0);
        net.add_edge(1, 2, 1, 0);
        net.add_edge(1, 3, 1, 0);
        net.add_edge(2, 3, 1, 0);
        assert_eq!(dinic_max_flow(&mut net, 0, 3, i64::MAX), 2);
    }

    #[test]
    fn wide_bipartite() {
        // 5 sources fan into 5 sinks through unit edges: perfect matching.
        let mut net = FlowNetwork::new(12);
        for i in 0..5 {
            net.add_edge(0, 1 + i, 1, 0);
            net.add_edge(6 + i, 11, 1, 0);
        }
        for i in 0..5 {
            for j in 0..5 {
                net.add_edge(1 + i, 6 + j, 1, 0);
            }
        }
        assert_eq!(dinic_max_flow(&mut net, 0, 11, i64::MAX), 5);
    }
}
