//! Independent certification of flow solutions.
//!
//! These checks do not share code with the solvers, so they serve as an
//! oracle in property tests: capacity bounds, conservation at every
//! non-terminal node, and min-cost optimality via the absence of a negative
//! cycle in the residual graph (the classic optimality criterion).

use crate::network::{FlowNetwork, NodeId};

/// A violation found by [`check_flow`] or [`check_optimality`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// An edge carries more than its capacity or negative flow.
    CapacityExceeded {
        /// Index of the offending user edge.
        edge: usize,
        /// Flow found on it.
        flow: i64,
        /// Its capacity.
        cap: i64,
    },
    /// A non-terminal node creates or destroys flow.
    ConservationBroken {
        /// The offending node.
        node: NodeId,
        /// Its net outgoing flow (should be zero).
        net: i64,
    },
    /// Source/sink imbalance does not match the claimed value.
    ValueMismatch {
        /// Net flow out of the source.
        at_source: i64,
        /// Net flow into the sink.
        at_sink: i64,
        /// The claimed flow value.
        claimed: i64,
    },
    /// The residual graph contains a negative-cost cycle, so the flow is
    /// not minimum-cost for its value.
    NegativeResidualCycle,
    /// A residual arc with remaining capacity has negative reduced cost
    /// under the claimed potentials, so they certify nothing.
    DualInfeasible {
        /// The offending residual arc id.
        arc: usize,
        /// Its reduced cost under the claimed potentials.
        reduced_cost: i64,
    },
}

/// Verifies the installed flow is a feasible `source → sink` flow of value
/// `value`. Returns all violations found (empty = valid).
pub fn check_flow(net: &FlowNetwork, source: NodeId, sink: NodeId, value: i64) -> Vec<Violation> {
    let mut violations = Vec::new();
    for e in net.edges() {
        let flow = net.flow_on(e);
        let cap = net.capacity(e);
        if flow < 0 || flow > cap {
            violations.push(Violation::CapacityExceeded {
                edge: e.0,
                flow,
                cap,
            });
        }
    }
    for v in 0..net.num_nodes() {
        if v == source || v == sink {
            continue;
        }
        let net_out = net.net_out_flow(v);
        if net_out != 0 {
            violations.push(Violation::ConservationBroken {
                node: v,
                net: net_out,
            });
        }
    }
    let at_source = net.net_out_flow(source);
    let at_sink = -net.net_out_flow(sink);
    if at_source != value || at_sink != value {
        violations.push(Violation::ValueMismatch {
            at_source,
            at_sink,
            claimed: value,
        });
    }
    violations
}

/// Verifies the installed flow is *minimum-cost* for its value by checking
/// that the residual graph has no negative-cost cycle (Bellman–Ford from a
/// virtual super-source attached to every node).
pub fn check_optimality(net: &FlowNetwork) -> Result<(), Violation> {
    let n = net.num_nodes();
    let mut dist = vec![0i64; n]; // virtual source: all distances start 0
    for round in 0..n {
        let mut changed = false;
        // Relax over the flat arc list (tail of `a` is `a ^ 1`'s head):
        // works on a `&FlowNetwork` without requiring a CSR rebuild.
        for a in 0..net.arcs.len() {
            let arc = &net.arcs[a];
            let u = net.arc_tail(a);
            if arc.cap > 0 && dist[u] + arc.cost < dist[arc.to] {
                dist[arc.to] = dist[u] + arc.cost;
                changed = true;
            }
        }
        if !changed {
            return Ok(());
        }
        if round == n - 1 {
            return Err(Violation::NegativeResidualCycle);
        }
    }
    Ok(())
}

/// Verifies dual feasibility of the installed flow under explicit node
/// potentials: every residual arc with remaining capacity must have
/// non-negative reduced cost `cost + pot[tail] − pot[head]`. In the
/// residual representation this single check *is* complementary
/// slackness — an arc below its upper bound must not be profitable, and
/// an arc carrying flow exposes a reverse residual whose reduced cost
/// is the negation, so `rc > 0` forces the forward flow to zero and
/// `flow > 0` forces `rc ≤ 0` — which together with feasibility
/// ([`check_flow`]) certifies the flow minimum-cost for its value.
/// Stronger than [`check_optimality`] in what it validates (the
/// *claimed* certificate, e.g. a repaired simplex basis's potentials,
/// not just the existence of some optimum) and `O(m)` instead of
/// `O(nm)`.
pub fn check_certificate(net: &FlowNetwork, pot: &[i64]) -> Result<(), Violation> {
    assert_eq!(pot.len(), net.num_nodes(), "one potential per node");
    for a in 0..net.arcs.len() {
        let arc = &net.arcs[a];
        if arc.cap <= 0 {
            continue;
        }
        let rc = arc.cost + pot[net.arc_tail(a)] - pot[arc.to];
        if rc < 0 {
            return Err(Violation::DualInfeasible {
                arc: a,
                reduced_cost: rc,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{min_cost_flow, Algorithm};

    #[test]
    fn valid_solution_passes() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 4, 1);
        net.add_edge(1, 3, 4, 1);
        net.add_edge(0, 2, 10, 10);
        net.add_edge(2, 3, 10, 10);
        min_cost_flow(&mut net, 0, 3, 6, Algorithm::default()).unwrap();
        assert!(check_flow(&net, 0, 3, 6).is_empty());
        assert_eq!(check_optimality(&net), Ok(()));
    }

    #[test]
    fn detects_value_mismatch() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 10, 1);
        min_cost_flow(&mut net, 0, 1, 5, Algorithm::default()).unwrap();
        let v = check_flow(&net, 0, 1, 7);
        assert!(matches!(v.as_slice(), [Violation::ValueMismatch { .. }]));
    }

    #[test]
    fn detects_conservation_break() {
        // Hand-build an inconsistent "flow": push into node 1, never out.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, 0);
        net.add_edge(1, 2, 5, 0);
        net.push(0, 3); // only first hop
        let v = check_flow(&net, 0, 2, 3);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ConservationBroken { node: 1, net: -3 })));
    }

    #[test]
    fn detects_suboptimal_flow() {
        // Route the expensive path although a cheap one is free: the
        // residual graph then has a negative cycle (cheap fwd + dear bwd).
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5, 1); // cheap
        net.add_edge(1, 3, 5, 1);
        net.add_edge(0, 2, 5, 10); // dear
        net.add_edge(2, 3, 5, 10);
        net.push(4, 5); // arcs 4,5 = edge (0,2); 6,7 = edge (2,3)
        net.push(6, 5);
        assert!(check_flow(&net, 0, 3, 5).is_empty());
        assert_eq!(
            check_optimality(&net),
            Err(Violation::NegativeResidualCycle)
        );
    }

    #[test]
    fn certificate_accepts_valid_potentials_and_rejects_bogus_ones() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 4, 1);
        net.add_edge(1, 3, 4, 1);
        net.add_edge(0, 2, 10, 10);
        net.add_edge(2, 3, 10, 10);
        let mut solver = crate::FlowSolver::new(Algorithm::NetworkSimplex);
        solver.solve(&mut net, 0, 3, 6).unwrap();
        let pot: Vec<i64> = solver.certificate_potentials().unwrap().to_vec();
        assert_eq!(check_certificate(&net, &pot), Ok(()));
        // Shifting one potential breaks a tree arc's reduced cost.
        let mut bad = pot.clone();
        bad[1] += 100;
        assert!(matches!(
            check_certificate(&net, &bad),
            Err(Violation::DualInfeasible { .. })
        ));
    }

    #[test]
    fn certificate_rejects_suboptimal_flow_under_any_potentials() {
        // The suboptimal flow from `detects_suboptimal_flow`: a
        // negative residual cycle has negative total reduced cost under
        // *every* potential assignment (the π terms telescope away), so
        // some arc must flag as dual-infeasible.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5, 1);
        net.add_edge(1, 3, 5, 1);
        net.add_edge(0, 2, 5, 10);
        net.add_edge(2, 3, 5, 10);
        net.push(4, 5);
        net.push(6, 5);
        assert!(check_certificate(&net, &[0; 4]).is_err());
        assert!(check_certificate(&net, &[3, 1, -7, 2]).is_err());
    }

    #[test]
    fn zero_flow_is_optimal_when_costs_nonnegative() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, 2);
        net.add_edge(1, 2, 5, 2);
        assert!(check_flow(&net, 0, 2, 0).is_empty());
        assert_eq!(check_optimality(&net), Ok(()));
    }
}
