//! Incremental repair of an installed min-cost flow.
//!
//! The composer re-solves a layered graph every time an adaptation event
//! fires, but most events perturb a *solved* network only locally: a host
//! crash deletes a handful of arcs; a rate change shifts the demand by a
//! small delta. Re-running the full solver discards everything the last
//! solve learned. This module repairs the installed solution instead:
//!
//! 1. **Drain** — deleting an edge that carries `f` units of flow
//!    ([`FlowNetwork::disable_edge`]) leaves a *pseudo-flow*: the edge's
//!    tail now has `f` units of excess (inflow it can no longer forward)
//!    and its head `f` units of deficit. Rate changes are expressed the
//!    same way without touching any edge — a rate increase of `Δ` is an
//!    excess of `Δ` at the source and a deficit of `Δ` at the sink; a
//!    decrease swaps the two, which routes *backwards* through residual
//!    arcs and cancels the most expensive routed paths first.
//! 2. **Re-augment** — successive shortest paths from excess nodes to
//!    deficit nodes over the residual network (Ahuja–Magnanti–Orlin
//!    §9.7), warm-started from the potentials the *previous solve* left
//!    behind: a solve's final potentials certify non-negative reduced
//!    costs on its residual network, and deleting arcs only removes
//!    constraints, so they stay valid after any pure deletion. One
//!    `O(m)` scan confirms this; when it fails (caller rebuilt or
//!    re-costed the graph) each augmentation falls back to SPFA, which
//!    needs no potentials.
//!
//! The warm path is phased to keep shortest-path searches off the
//! per-augmentation cost: each phase runs **one** Dijkstra seeded from
//! *every* remaining excess node at once (distance 0 each — exactly the
//! super-source construction of multi-supply SSP), folds the distances
//! into the potentials, augments the recorded path, then drains as many
//! further augmenting paths as a Dinic-style DFS can find among the
//! zero-reduced-cost residual arcs — after the fold every shortest
//! excess→deficit path lies in that subgraph, and any path the DFS's
//! pruning misses is recovered by the next phase's Dijkstra. This is the
//! classic primal–dual batching: the number of searches drops from one
//! per augmenting path (what a cold solve pays) to one per *distinct
//! shortest-path cost level* the re-routed flow crosses — measured on
//! the layered benches, a median-host crash at 6×24 repairs in ~13
//! phases where the cold solve runs ~100 searches. The phase count, not
//! constant factors, is what bounds the repair speedup; see
//! EXPERIMENTS.md for the measured distribution.
//!
//! Because the starting point is a min-cost pseudo-flow and every
//! augmentation follows a true shortest path, the repaired flow is
//! **exactly** min-cost for its value — bit-identical in cost to a cold
//! re-solve of the damaged network (the flow itself may differ among
//! cost ties). Callers that need a guarantee can therefore compare
//! against a cold solve in tests, and fall back to one only when repair
//! reports a [`shortfall`](RepairOutcome::shortfall).

use crate::network::{EdgeId, FlowNetwork, NodeId};
use crate::ssp::{max_reduced_cost, potentials_valid, spfa, SspScratch, DIAL_SPAN_LIMIT, INF};
use std::cmp::Reverse;

/// Which rung of the repair ladder produced a [`RepairOutcome`].
///
/// [`crate::FlowSolver`] tries the tiers in order of decreasing
/// speed: re-pivoting the retained simplex basis, then the phased
/// primal–dual path warm-started from carried potentials, then the
/// potential-free SPFA fallback. Every tier yields the same final
/// cost (each is an exact method); the tier only reports how much
/// prior work the repair could reuse.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RepairTier {
    /// Warm-basis network simplex: dual re-pricing plus primal
    /// re-pivots from the retained spanning-tree basis
    /// ([`crate::SimplexBasis`]).
    WarmBasis,
    /// Phased primal–dual successive shortest paths, warm-started
    /// from the previous solve's potentials.
    Phased,
    /// SPFA successive shortest paths; needs no carried state.
    Spfa,
}

/// Outcome of an incremental repair pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RepairOutcome {
    /// Imbalance units successfully re-routed.
    pub routed: i64,
    /// Units of imbalance that could not be re-routed (0 on full repair).
    /// A non-zero shortfall means the damaged network cannot carry the
    /// previous flow value; callers typically fall back to a cold solve
    /// or renegotiate the rate.
    pub shortfall: i64,
    /// Net change in the installed flow's total cost, including both the
    /// cost freed by drained edges and the cost of the augmenting paths.
    /// Negative for rate decreases (expensive paths cancelled).
    pub cost_delta: i64,
    /// Whether the carried potentials validated, enabling warm Dijkstra
    /// augmentations (`false` means the SPFA fallback ran).
    pub warm: bool,
    /// Shortest-path searches the repair ran (Dijkstra phases on the warm
    /// path, SPFA calls on the fallback, simplex pivots on the basis
    /// tier). Diagnostic: a repair that needs as many phases as a cold
    /// solve needs augmentations has lost the batching the warm path
    /// exists for.
    pub phases: u32,
    /// Which repair tier produced this outcome (see [`RepairTier`]).
    pub tier: RepairTier,
}

impl RepairOutcome {
    /// Whether the repair restored full balance.
    pub fn complete(&self) -> bool {
        self.shortfall == 0
    }
}

/// Disables every edge in `dead` and re-routes the drained flow.
/// See [`repair`] for the balance/cost contract.
pub(crate) fn repair_deletions(
    s: &mut SspScratch,
    net: &mut FlowNetwork,
    dead: &[EdgeId],
) -> RepairOutcome {
    let mut excess: Vec<(NodeId, i64)> = Vec::with_capacity(dead.len());
    let mut deficit: Vec<(NodeId, i64)> = Vec::with_capacity(dead.len());
    let mut freed_cost = 0i64;
    for &e in dead {
        let (u, v) = net.endpoints(e);
        let f = net.disable_edge(e);
        if f > 0 {
            excess.push((u, f));
            deficit.push((v, f));
            freed_cost += f * net.cost(e);
        }
    }
    let mut out = repair(s, net, &excess, &deficit);
    out.cost_delta -= freed_cost;
    out
}

/// Restores balance to a pseudo-flow: routes `min(Σ excess, Σ deficit)`
/// units from the excess nodes to the deficit nodes along successive
/// shortest residual paths. `cost_delta` reports the summed true cost of
/// the augmenting paths. Requires the installed flow to be min-cost for
/// its imbalance (true for any flow a solver in this crate installed,
/// including infeasible partials, after arbitrary edge deletions); under
/// that precondition the result is again min-cost.
pub(crate) fn repair(
    s: &mut SspScratch,
    net: &mut FlowNetwork,
    excess: &[(NodeId, i64)],
    deficit: &[(NodeId, i64)],
) -> RepairOutcome {
    net.ensure_csr();
    let n = net.num_nodes();
    s.bal.clear();
    s.bal.resize(n, 0);
    for &(v, amt) in excess {
        debug_assert!(amt >= 0, "negative excess");
        s.bal[v] += amt;
    }
    for &(v, amt) in deficit {
        debug_assert!(amt >= 0, "negative deficit");
        s.bal[v] -= amt;
    }
    let plus: i64 = s.bal.iter().filter(|&&b| b > 0).sum();
    let minus: i64 = -s.bal.iter().filter(|&&b| b < 0).sum::<i64>();
    let mut to_route = plus.min(minus);
    let mut out = RepairOutcome {
        routed: 0,
        shortfall: 0,
        cost_delta: 0,
        warm: false,
        phases: 0,
        tier: RepairTier::Spfa,
    };
    if to_route == 0 {
        return out;
    }
    // Warm path: the previous solve's final potentials, revalidated in
    // one O(m) scan against the current (possibly damaged) network.
    out.warm = s.pot.len() == n && potentials_valid(net, &s.pot);
    if out.warm {
        out.tier = RepairTier::Phased;
    }
    s.dist.clear();
    s.dist.resize(n, INF);
    s.prev_arc.clear();
    s.prev_arc.resize(n, usize::MAX);
    if out.warm {
        // Phased multi-source SSP: one *complete* Dijkstra from all
        // remaining excess nodes, a full Johnson fold, then a batch
        // augmentation over the zero-reduced-cost subgraph. Running the
        // search to completion (instead of stopping at the nearest
        // deficit) puts the whole shortest-path DAG — the shortest paths
        // to *every* deficit, each at its own distance — at reduced cost
        // zero, so one drain covers every cost level at once. Ordering
        // among deficits is irrelevant: any augmentation along
        // zero-reduced arcs preserves complementary slackness, which is
        // the invariant that makes the final flow min-cost. The
        // recorded-path augmentation guarantees progress every phase, so
        // termination never depends on the DFS.
        // Phase-search engine: Dial's bucket ring when the reduced-cost
        // span allows (the solver's own trick — every queue operation
        // becomes O(1)), binary heap otherwise. Each fold grows any
        // reduced cost by at most the fold cap, so the bound is tracked
        // in O(1) per phase and only re-measured when it drifts past the
        // limit, exactly as `solve_with` does.
        let mut drains = 0u32;
        let mut dial_span: Option<i64> = None;
        while to_route > 0 {
            out.phases += 1;
            let span = match dial_span {
                Some(bound) if bound < DIAL_SPAN_LIMIT => bound,
                _ => max_reduced_cost(net, &s.pot),
            };
            dial_span = Some(span);
            let found = if span < DIAL_SPAN_LIMIT {
                dial_from_excess(net, s, span)
            } else {
                dijkstra_from_excess(net, s)
            };
            let Some(t) = found else {
                break;
            };
            dial_span = dial_span.map(|bound| bound + s.dist[t]);
            // Capped fold at the *furthest* deficit's distance: settled
            // nodes carry exact distances, every unsettled label is
            // ≥ dt, and the same case analysis as the solver's fold
            // (ssp.rs) keeps all reduced costs non-negative. Every
            // shortest path to every remaining deficit lies within dt,
            // so the whole multi-target shortest-path DAG goes to
            // reduced cost zero.
            let dt = s.dist[t];
            for v in 0..n {
                s.pot[v] += s.dist[v].min(dt);
            }
            to_route -= augment_recorded_path(net, s, t, to_route, &mut out);
            // The search compacted the phase's shortest-path candidate
            // arcs as it settled nodes; the drains below walk only that
            // adjacency, so re-draining until dry costs O(candidates),
            // not O(m). A re-drain resets the DFS cursors, which
            // recovers any path the previous sweep's pruning missed for
            // the price of one cheap sweep instead of a Dijkstra.
            while to_route > 0 {
                drains += 1;
                let drained = drain_zero_paths(net, s, to_route, &mut out);
                if drained == 0 {
                    break;
                }
                to_route -= drained;
            }
        }
        if std::env::var_os("RASC_REPAIR_PROF").is_some() {
            eprintln!("repair prof: phases={} drains={}", out.phases, drains);
        }
    } else {
        // SPFA fallback, one path per search: pick any excess node,
        // augment along a shortest residual path to a deficit node,
        // repeat. An excess node that reaches no deficit is skipped; a
        // later augmentation can open residual arcs toward it, so
        // passes repeat while progress is made.
        let mut progress = true;
        while to_route > 0 && progress {
            progress = false;
            for src in 0..n {
                while s.bal[src] > 0 && to_route > 0 {
                    out.phases += 1;
                    let Some(t) = spfa_to_deficit(net, src, s) else {
                        break;
                    };
                    to_route -= augment_recorded_path(net, s, t, to_route, &mut out);
                    progress = true;
                }
            }
        }
    }
    out.shortfall = to_route;
    out
}

/// Augments along the `prev_arc` chain the last search recorded, from
/// deficit node `t` back to whichever excess seed the chain reaches
/// (seeds carry `prev_arc == usize::MAX`). Returns the units routed.
fn augment_recorded_path(
    net: &mut FlowNetwork,
    s: &mut SspScratch,
    t: NodeId,
    quota: i64,
    out: &mut RepairOutcome,
) -> i64 {
    let mut bottleneck = (-s.bal[t]).min(quota);
    let mut v = t;
    while s.prev_arc[v] != usize::MAX {
        let a = s.prev_arc[v];
        bottleneck = bottleneck.min(net.arcs[a].cap);
        v = net.arc_tail(a);
    }
    let src = v;
    bottleneck = bottleneck.min(s.bal[src]);
    debug_assert!(bottleneck > 0);
    let mut v = t;
    let mut path_cost = 0i64;
    while s.prev_arc[v] != usize::MAX {
        let a = s.prev_arc[v];
        path_cost += net.arcs[a].cost;
        net.push(a, bottleneck);
        v = net.arc_tail(a);
    }
    s.bal[src] -= bottleneck;
    s.bal[t] += bottleneck;
    out.routed += bottleneck;
    out.cost_delta += bottleneck * path_cost;
    bottleneck
}

/// Multi-source heap Dijkstra over reduced costs seeded from *every*
/// node with remaining excess (all at distance 0 — the super-source
/// construction of multi-supply SSP), run until every reachable node
/// with remaining deficit has settled. Returns the *furthest* settled
/// deficit node — its distance caps the caller's potential fold, and
/// every shortest path to every deficit lies within it — or `None` when
/// no deficit is reachable from any excess — at which point no further
/// augmentation is possible at all, so the caller reports the remaining
/// imbalance as a shortfall.
fn dijkstra_from_excess(net: &FlowNetwork, s: &mut SspScratch) -> Option<NodeId> {
    let n = net.num_nodes();
    let SspScratch {
        pot,
        dist,
        prev_arc,
        heap,
        bal,
        tight_lo,
        tight_hi,
        tight,
        ..
    } = s;
    dist.fill(INF);
    prev_arc.fill(usize::MAX);
    tight_lo.clear();
    tight_lo.resize(n, 0);
    tight_hi.clear();
    tight_hi.resize(n, 0);
    tight.clear();
    heap.clear();
    let mut deficits_left = 0usize;
    for (v, &b) in bal.iter().enumerate() {
        if b > 0 {
            dist[v] = 0;
            heap.push(Reverse((0i64, v as u32)));
        } else if b < 0 {
            deficits_left += 1;
        }
    }
    let mut furthest: Option<NodeId> = None;
    while let Some(Reverse((d, u))) = heap.pop() {
        let u = u as usize;
        if d > dist[u] {
            continue;
        }
        if bal[u] < 0 {
            furthest = Some(u);
            deficits_left -= 1;
            if deficits_left == 0 {
                heap.clear();
                break;
            }
        }
        let (lo, hi) = net.out_range(u);
        let base = d + pot[u];
        tight_lo[u] = tight.len() as u32;
        for i in lo..hi {
            let ca = &net.csr_arcs[i];
            if ca.cap <= 0 {
                continue;
            }
            let to = ca.to as usize;
            let nd = base + ca.cost - pot[to];
            debug_assert!(nd >= d, "negative reduced cost at CSR position {i}");
            if nd <= dist[to] {
                if nd < dist[to] {
                    dist[to] = nd;
                    prev_arc[to] = net.csr[i] as usize;
                    heap.push(Reverse((nd, to as u32)));
                }
                // Shortest-path candidate at settle time; a later,
                // cheaper label for `to` invalidates it, so the drain
                // re-checks reduced costs post-fold.
                tight.push(i as u32);
            }
        }
        tight_hi[u] = tight.len() as u32;
    }
    furthest
}

/// [`dijkstra_from_excess`] on Dial's bucket ring: identical contract
/// (seed every excess at distance 0, settle until the last reachable
/// deficit, return the furthest), with O(1) queue operations because
/// every tentative label lives within `max_rc` of the current distance,
/// making residues modulo `max_rc + 1` unambiguous. Touched buckets are
/// cleared on exit so an early stop cannot leak entries into the next
/// phase.
fn dial_from_excess(net: &FlowNetwork, s: &mut SspScratch, max_rc: i64) -> Option<NodeId> {
    let n = net.num_nodes();
    let SspScratch {
        pot,
        dist,
        prev_arc,
        bal,
        buckets,
        touched,
        tight_lo,
        tight_hi,
        tight,
        ..
    } = s;
    let ring = max_rc as usize + 1;
    if buckets.len() < ring {
        buckets.resize_with(ring, Vec::new);
    }
    dist.fill(INF);
    prev_arc.fill(usize::MAX);
    tight_lo.clear();
    tight_lo.resize(n, 0);
    tight_hi.clear();
    tight_hi.resize(n, 0);
    tight.clear();
    let mut outstanding = 0usize;
    let mut deficits_left = 0usize;
    for (v, &b) in bal.iter().enumerate() {
        if b > 0 {
            dist[v] = 0;
            buckets[0].push(v as u32);
            outstanding += 1;
        } else if b < 0 {
            deficits_left += 1;
        }
    }
    if outstanding > 0 {
        touched.push(0);
    }
    let mut furthest: Option<NodeId> = None;
    let mut d = 0i64;
    'scan: while outstanding > 0 {
        let idx = (d as usize) % ring;
        while let Some(u) = buckets[idx].pop() {
            outstanding -= 1;
            let u = u as usize;
            if dist[u] != d {
                continue; // stale: improved to a smaller label since insertion
            }
            if bal[u] < 0 {
                furthest = Some(u);
                deficits_left -= 1;
                if deficits_left == 0 {
                    break 'scan;
                }
            }
            let (lo, hi) = net.out_range(u);
            let base = d + pot[u];
            tight_lo[u] = tight.len() as u32;
            for i in lo..hi {
                let ca = &net.csr_arcs[i];
                if ca.cap <= 0 {
                    continue;
                }
                let to = ca.to as usize;
                let nd = base + ca.cost - pot[to];
                debug_assert!(
                    (d..=d + max_rc).contains(&nd),
                    "reduced cost outside bucket span at CSR position {i}"
                );
                if nd <= dist[to] {
                    if nd < dist[to] {
                        dist[to] = nd;
                        prev_arc[to] = net.csr[i] as usize;
                        let b = (nd as usize) % ring;
                        buckets[b].push(to as u32);
                        touched.push(b as u32);
                        outstanding += 1;
                    }
                    // Shortest-path candidate at settle time; a later,
                    // cheaper label for `to` invalidates it, so the
                    // drain re-checks reduced costs post-fold.
                    tight.push(i as u32);
                }
            }
            tight_hi[u] = tight.len() as u32;
        }
        d += 1;
    }
    for &b in touched.iter() {
        buckets[b as usize].clear();
    }
    touched.clear();
    furthest
}

/// Batch augmentation between Dijkstra phases: iterative DFS from each
/// remaining excess node over the adjacency of shortest-path candidate
/// arcs the search compacted while settling (`tight_lo`/`tight_hi`/
/// `tight`), with Dinic-style per-node arc cursors so one drain visits
/// each candidate arc O(1) times outside of augmentations. Candidates
/// were tight when their tail settled but a later, cheaper label at the
/// head invalidates some, so each step re-checks the (post-fold) reduced
/// cost — only exact zeroes lie on true shortest paths, which is what
/// makes every augmentation here a legal SSP step. Routes until no more
/// paths are found and returns the total; the cursor pruning may miss
/// paths that the next phase's Dijkstra then recovers, so a zero return
/// must not be read as a shortfall.
fn drain_zero_paths(
    net: &mut FlowNetwork,
    s: &mut SspScratch,
    mut quota: i64,
    out: &mut RepairOutcome,
) -> i64 {
    let n = net.num_nodes();
    s.cur.clear();
    s.cur.extend(s.tight_lo[..n].iter().map(|&o| o as usize));
    s.on_path.clear();
    s.on_path.resize(n, false);
    let mut routed_total = 0i64;
    'next_src: for src in 0..n {
        while s.bal[src] > 0 && quota > 0 {
            // One DFS attempt for one augmenting path from `src`. The
            // path empties before every exit, so `on_path` marks never
            // leak between attempts.
            s.path.clear();
            let mut v = src;
            loop {
                if s.bal[v] < 0 {
                    let mut bottleneck = s.bal[src].min(-s.bal[v]).min(quota);
                    for &j in &s.path {
                        bottleneck = bottleneck.min(net.csr_arcs[s.tight[j] as usize].cap);
                    }
                    debug_assert!(bottleneck > 0);
                    let mut path_cost = 0i64;
                    for &j in &s.path {
                        let a = net.csr[s.tight[j] as usize] as usize;
                        path_cost += net.arcs[a].cost;
                        net.push(a, bottleneck);
                    }
                    s.bal[src] -= bottleneck;
                    s.bal[v] += bottleneck;
                    out.routed += bottleneck;
                    out.cost_delta += bottleneck * path_cost;
                    quota -= bottleneck;
                    routed_total += bottleneck;
                    for &j in &s.path {
                        s.on_path[net.csr_arcs[s.tight[j] as usize].to as usize] = false;
                    }
                    break; // retry from src: arcs may have saturated
                }
                let hi = s.tight_hi[v] as usize;
                let mut stepped = false;
                while s.cur[v] < hi {
                    let j = s.cur[v];
                    let ca = &net.csr_arcs[s.tight[j] as usize];
                    let to = ca.to as usize;
                    if ca.cap > 0
                        && ca.cost + s.pot[v] - s.pot[to] == 0
                        && to != src
                        && !s.on_path[to]
                    {
                        s.path.push(j);
                        s.on_path[to] = true;
                        v = to;
                        stepped = true;
                        break;
                    }
                    s.cur[v] += 1;
                }
                if stepped {
                    continue;
                }
                if v == src {
                    continue 'next_src; // this excess is exhausted
                }
                // Dead end: retreat one step and advance past the arc.
                let j = s.path.pop().expect("non-source node is on a path");
                s.on_path[v] = false;
                v = net.arc_tail(net.csr[s.tight[j] as usize] as usize);
                s.cur[v] += 1;
            }
        }
        if quota == 0 {
            break;
        }
    }
    routed_total
}

/// SPFA fallback when no valid potentials are carried: full relaxation
/// from `source` over true costs, then the nearest deficit node. Safe on
/// negative residual costs; requires no negative cycles, which min-cost
/// pseudo-flows guarantee.
fn spfa_to_deficit(net: &FlowNetwork, source: NodeId, s: &mut SspScratch) -> Option<NodeId> {
    spfa(net, source, source, s);
    let mut best: Option<NodeId> = None;
    for v in 0..net.num_nodes() {
        if s.bal[v] < 0 && s.dist[v] < INF && best.is_none_or(|b| s.dist[v] < s.dist[b]) {
            best = Some(v);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, FlowSolver};

    /// Two parallel two-hop routes plus a direct expensive edge.
    fn diamond() -> (FlowNetwork, [EdgeId; 5]) {
        let mut net = FlowNetwork::new(4);
        let a = net.add_edge(0, 1, 10, 1);
        let b = net.add_edge(1, 3, 10, 1);
        let c = net.add_edge(0, 2, 10, 4);
        let d = net.add_edge(2, 3, 10, 4);
        let e = net.add_edge(0, 3, 10, 20);
        (net, [a, b, c, d, e])
    }

    #[test]
    fn deletion_repair_matches_cold_resolve() {
        for alg in [Algorithm::DijkstraSsp, Algorithm::DialSsp] {
            let (mut net, edges) = diamond();
            let mut solver = FlowSolver::new(alg);
            let sol = solver.solve(&mut net, 0, 3, 15).unwrap();
            assert_eq!(sol.flow, 15);
            // Kill the cheap route's second hop; its 10 units must move.
            let out = solver.repair_deletions(&mut net, &[edges[1]]);
            assert!(out.complete(), "{out:?}");
            assert_eq!(out.routed, 10);
            // Cold re-solve of the damaged graph for comparison.
            let (mut cold, e2) = diamond();
            cold.disable_edge(e2[1]);
            let want = FlowSolver::new(alg).solve(&mut cold, 0, 3, 15).unwrap();
            assert_eq!(net.total_cost(), want.cost, "{alg:?}");
            assert_eq!(sol.cost + out.cost_delta, want.cost, "{alg:?}");
        }
    }

    #[test]
    fn simplex_solve_repairs_on_the_warm_basis_tier() {
        let (mut net, edges) = diamond();
        // A simplex solve retains its basis; the repair must re-pivot
        // it instead of falling back to an augmenting-path tier.
        let mut solver = FlowSolver::new(Algorithm::NetworkSimplex);
        let sol = solver.solve(&mut net, 0, 3, 15).unwrap();
        let out = solver.repair_deletions(&mut net, &[edges[1]]);
        assert_eq!(out.tier, RepairTier::WarmBasis);
        assert!(out.warm);
        assert!(out.complete(), "{out:?}");
        let (mut cold, e2) = diamond();
        cold.disable_edge(e2[1]);
        let want = FlowSolver::new(Algorithm::SpfaSsp)
            .solve(&mut cold, 0, 3, 15)
            .unwrap();
        assert_eq!(net.total_cost(), want.cost);
        assert_eq!(sol.cost + out.cost_delta, want.cost);
    }

    #[test]
    fn repair_without_usable_state_falls_back_to_spfa() {
        let (mut net, edges) = diamond();
        let mut solver = FlowSolver::new(Algorithm::NetworkSimplex);
        let sol = solver.solve(&mut net, 0, 3, 15).unwrap();
        // A structural change strands the retained basis, and a simplex
        // solve carries no SSP potentials either: bottom tier it is.
        net.add_edge(1, 2, 0, 1);
        let out = solver.repair_deletions(&mut net, &[edges[1]]);
        assert_eq!(out.tier, RepairTier::Spfa);
        assert!(!out.warm);
        assert!(out.complete(), "{out:?}");
        let (mut cold, e2) = diamond();
        cold.add_edge(1, 2, 0, 1);
        cold.disable_edge(e2[1]);
        let want = FlowSolver::new(Algorithm::SpfaSsp)
            .solve(&mut cold, 0, 3, 15)
            .unwrap();
        assert_eq!(net.total_cost(), want.cost);
        assert_eq!(sol.cost + out.cost_delta, want.cost);
    }

    #[test]
    fn phased_tier_reports_itself() {
        let (mut net, edges) = diamond();
        let mut solver = FlowSolver::new(Algorithm::DijkstraSsp);
        solver.solve(&mut net, 0, 3, 15).unwrap();
        let out = solver.repair_deletions(&mut net, &[edges[1]]);
        assert_eq!(out.tier, RepairTier::Phased);
        assert!(out.warm);
        assert!(out.complete(), "{out:?}");
    }

    #[test]
    fn rate_increase_matches_cold_solve_at_higher_target() {
        let (mut net, _) = diamond();
        let mut solver = FlowSolver::new(Algorithm::DialSsp);
        solver.solve(&mut net, 0, 3, 8).unwrap();
        let out = solver.increase_flow(&mut net, 0, 3, 9);
        assert!(out.complete(), "{out:?}");
        let (mut cold, _) = diamond();
        let want = FlowSolver::new(Algorithm::DialSsp)
            .solve(&mut cold, 0, 3, 17)
            .unwrap();
        assert_eq!(net.total_cost(), want.cost);
    }

    #[test]
    fn rate_decrease_cancels_expensive_paths_first() {
        let (mut net, edges) = diamond();
        let mut solver = FlowSolver::new(Algorithm::DijkstraSsp);
        // 15 units: 10 cheap + 5 expensive middle route.
        solver.solve(&mut net, 0, 3, 15).unwrap();
        let out = solver.decrease_flow(&mut net, 0, 3, 5);
        assert!(out.complete(), "{out:?}");
        assert!(out.cost_delta < 0);
        // The expensive route is emptied, the cheap one untouched.
        assert_eq!(net.flow_on(edges[2]), 0);
        assert_eq!(net.flow_on(edges[0]), 10);
        let (mut cold, _) = diamond();
        let want = FlowSolver::new(Algorithm::DijkstraSsp)
            .solve(&mut cold, 0, 3, 10)
            .unwrap();
        assert_eq!(net.total_cost(), want.cost);
    }

    #[test]
    fn shortfall_reported_when_capacity_is_gone() {
        let mut net = FlowNetwork::new(3);
        let a = net.add_edge(0, 1, 5, 1);
        let b = net.add_edge(1, 2, 5, 1);
        let thin = net.add_edge(0, 2, 2, 9);
        let mut solver = FlowSolver::new(Algorithm::DialSsp);
        solver.solve(&mut net, 0, 2, 5).unwrap();
        let out = solver.repair_deletions(&mut net, &[b]);
        assert_eq!(out.routed, 2, "only the thin bypass remains");
        assert_eq!(out.shortfall, 3);
        assert_eq!(net.flow_on(thin), 2);
        // The unroutable remainder stays as residual imbalance on the
        // first hop; a caller seeing a shortfall re-solves cold.
        assert_eq!(net.flow_on(a), 3);
    }

    #[test]
    fn deleting_zero_flow_edges_is_free() {
        let (mut net, edges) = diamond();
        let mut solver = FlowSolver::new(Algorithm::DialSsp);
        solver.solve(&mut net, 0, 3, 5).unwrap();
        let before = net.total_cost();
        // Only the cheap route carries flow; the rest delete for free.
        let out = solver.repair_deletions(&mut net, &[edges[2], edges[4]]);
        assert_eq!(out.routed, 0);
        assert_eq!(out.cost_delta, 0);
        assert!(out.complete());
        assert_eq!(net.total_cost(), before);
    }

    #[test]
    fn repeated_repairs_stay_optimal() {
        // Chain of crashes: repair after each and compare against a cold
        // solve of the cumulatively damaged graph. At target 8 each route
        // can absorb the whole flow, so every repair stays feasible.
        let (mut net, edges) = diamond();
        let mut solver = FlowSolver::new(Algorithm::DijkstraSsp);
        solver.solve(&mut net, 0, 3, 8).unwrap();
        for kill in [edges[0], edges[3]] {
            let out = solver.repair_deletions(&mut net, &[kill]);
            assert!(out.complete(), "{out:?}");
            let mut cold = FlowNetwork::new(4);
            for e in net.edges() {
                let (u, v) = net.endpoints(e);
                cold.add_edge(u, v, net.capacity(e), net.cost(e));
            }
            let want = FlowSolver::new(Algorithm::SpfaSsp)
                .solve(&mut cold, 0, 3, 8)
                .unwrap();
            assert_eq!(net.total_cost(), want.cost);
        }
    }
}
