//! Randomized equivalence suite for incremental repair: after any
//! sequence of edge deletions and rate changes, a completed repair must
//! leave a flow whose `(value, cost)` is bit-identical to a cold
//! re-solve of the damaged network — min-cost flow of a given value has
//! a unique cost, so cost equality is the exact oracle even when the
//! flow assignment differs. A repair shortfall must coincide with the
//! cold solve being infeasible (the path-decomposition argument: any
//! feasible completion of the pseudo-flow would contain an
//! excess-to-deficit path in the residual network).

use desim::SimRng;
use mincostflow::{min_cost_flow, validate, Algorithm, EdgeId, FlowNetwork, FlowSolver};

#[derive(Clone, Debug)]
struct Instance {
    n: usize,
    edges: Vec<(usize, usize, i64, i64)>,
    target: i64,
}

/// Layered-DAG-ish random instance with non-negative costs (matching the
/// composer's graphs; arbitrary topology is covered in the unit tests).
fn random_instance(rng: &mut SimRng, max_nodes: usize) -> Instance {
    let n = rng.range_usize(3, max_nodes + 1);
    let m = rng.range_usize(2, 4 * n + 1);
    let edges = (0..m)
        .map(|_| {
            let from = rng.range_usize(0, n - 1);
            let to = rng.range_usize(from + 1, n);
            (
                from,
                to,
                rng.range_u64(1, 20) as i64,
                rng.range_u64(0, 25) as i64,
            )
        })
        .collect();
    Instance {
        n,
        edges,
        target: rng.range_u64(1, 31) as i64,
    }
}

fn build(inst: &Instance) -> FlowNetwork {
    let mut net = FlowNetwork::new(inst.n);
    for &(from, to, cap, cost) in &inst.edges {
        net.add_edge(from, to, cap, cost);
    }
    net
}

/// Clones the damaged topology (disabled edges come back with zero
/// capacity) into a fresh network for the cold-solve oracle.
fn clone_damaged(net: &FlowNetwork) -> FlowNetwork {
    let mut cold = FlowNetwork::new(net.num_nodes());
    for e in net.edges() {
        let (u, v) = net.endpoints(e);
        cold.add_edge(u, v, net.capacity(e), net.cost(e));
    }
    cold
}

fn random_edge(net: &FlowNetwork, rng: &mut SimRng) -> EdgeId {
    let k = rng.range_usize(0, net.num_edges());
    net.edges().nth(k).expect("edge index in range")
}

fn installed_value(r: Result<mincostflow::Solution, mincostflow::Infeasible>) -> i64 {
    match r {
        Ok(s) => s.flow,
        Err(e) => e.max_flow,
    }
}

const ALGS: [Algorithm; 3] = [
    Algorithm::DijkstraSsp,
    Algorithm::DialSsp,
    Algorithm::NetworkSimplex, // no carried potentials: exercises SPFA repair
];

/// Crash repair: delete a random edge from a solved instance and repair.
#[test]
fn deletion_repair_matches_cold_resolve() {
    for alg in ALGS {
        let mut rng = SimRng::new(0x2E9A1);
        for case in 0..256u32 {
            let inst = random_instance(&mut rng, 10);
            let sink = inst.n - 1;
            let mut net = build(&inst);
            let mut solver = FlowSolver::new(alg);
            let value = installed_value(solver.solve(&mut net, 0, sink, inst.target));
            if value == 0 {
                continue;
            }
            let dead = random_edge(&net, &mut rng);
            let out = solver.repair_deletions(&mut net, &[dead]);
            let mut cold = clone_damaged(&net);
            let want = min_cost_flow(&mut cold, 0, sink, value, Algorithm::SpfaSsp);
            if out.complete() {
                let want = want.unwrap_or_else(|e| {
                    panic!("case {case} ({alg:?}): repair ok but cold infeasible: {e}")
                });
                assert_eq!(net.total_cost(), want.cost, "case {case} ({alg:?})");
                assert!(
                    validate::check_flow(&net, 0, sink, value).is_empty(),
                    "case {case} ({alg:?})"
                );
                assert_eq!(
                    validate::check_optimality(&net),
                    Ok(()),
                    "case {case} ({alg:?})"
                );
            } else {
                assert!(
                    want.is_err(),
                    "case {case} ({alg:?}): repair shortfall {} but cold solve feasible",
                    out.shortfall
                );
            }
        }
    }
}

/// Rate bumps: raising the routed value incrementally must match a cold
/// solve at the higher target; on shortfall the totals must agree with
/// the cold infeasibility report exactly.
#[test]
fn rate_increase_matches_cold_resolve() {
    for alg in ALGS {
        let mut rng = SimRng::new(0xB0B5);
        for case in 0..256u32 {
            let inst = random_instance(&mut rng, 10);
            let sink = inst.n - 1;
            let mut net = build(&inst);
            let mut solver = FlowSolver::new(alg);
            let value = installed_value(solver.solve(&mut net, 0, sink, inst.target));
            let delta = rng.range_u64(1, 9) as i64;
            let out = solver.increase_flow(&mut net, 0, sink, delta);
            let mut cold = build(&inst);
            let want = min_cost_flow(&mut cold, 0, sink, value + delta, Algorithm::SpfaSsp);
            match want {
                Ok(w) => {
                    assert!(out.complete(), "case {case} ({alg:?}): {out:?}");
                    assert_eq!(net.total_cost(), w.cost, "case {case} ({alg:?})");
                }
                Err(e) => {
                    // SSP continues from the installed max: the reachable
                    // value is the true max flow, bit-exactly.
                    assert_eq!(
                        value + out.routed,
                        e.max_flow,
                        "case {case} ({alg:?}): {out:?}"
                    );
                    assert_eq!(net.total_cost(), e.cost, "case {case} ({alg:?})");
                }
            }
            assert_eq!(
                validate::check_optimality(&net),
                Ok(()),
                "case {case} ({alg:?})"
            );
        }
    }
}

/// Rate drops always complete (cancelling routed paths is always
/// possible) and match a cold solve at the lower target.
#[test]
fn rate_decrease_matches_cold_resolve() {
    for alg in ALGS {
        let mut rng = SimRng::new(0xD0D0);
        for case in 0..256u32 {
            let inst = random_instance(&mut rng, 10);
            let sink = inst.n - 1;
            let mut net = build(&inst);
            let mut solver = FlowSolver::new(alg);
            let value = installed_value(solver.solve(&mut net, 0, sink, inst.target));
            if value == 0 {
                continue;
            }
            let delta = rng.range_u64(1, value as u64 + 1) as i64;
            let out = solver.decrease_flow(&mut net, 0, sink, delta);
            assert!(out.complete(), "case {case} ({alg:?}): {out:?}");
            let mut cold = build(&inst);
            let want = min_cost_flow(&mut cold, 0, sink, value - delta, Algorithm::SpfaSsp)
                .expect("lower target must stay feasible");
            assert_eq!(net.total_cost(), want.cost, "case {case} ({alg:?})");
            assert!(
                validate::check_flow(&net, 0, sink, value - delta).is_empty(),
                "case {case} ({alg:?})"
            );
        }
    }
}

/// Adaptation churn: interleave deletions, bumps, and drops against one
/// retained solver, falling back to a cold solve whenever a repair
/// reports a shortfall — exactly the engine's policy — and check the
/// running cost against the oracle after every event.
#[test]
fn mixed_event_sequences_stay_optimal() {
    let mut rng = SimRng::new(0xC4A05);
    for case in 0..64u32 {
        let inst = random_instance(&mut rng, 12);
        let sink = inst.n - 1;
        let mut net = build(&inst);
        let mut solver = FlowSolver::default();
        let mut value = installed_value(solver.solve(&mut net, 0, sink, inst.target));
        for step in 0..8u32 {
            match rng.range_u64(0, 3) {
                0 => {
                    let dead = random_edge(&net, &mut rng);
                    let out = solver.repair_deletions(&mut net, &[dead]);
                    if !out.complete() {
                        // Engine fallback: cold re-solve of the damaged
                        // network at the best still-feasible value.
                        net.reset_flow();
                        solver.forget();
                        value = installed_value(solver.solve(&mut net, 0, sink, value));
                    }
                }
                1 => {
                    let delta = rng.range_u64(1, 6) as i64;
                    let out = solver.increase_flow(&mut net, 0, sink, delta);
                    value += out.routed;
                }
                _ => {
                    let delta = rng.range_u64(0, value.max(1) as u64) as i64;
                    let out = solver.decrease_flow(&mut net, 0, sink, delta);
                    assert!(out.complete(), "case {case} step {step}: {out:?}");
                    value -= delta;
                }
            }
            let mut cold = clone_damaged(&net);
            let want = min_cost_flow(&mut cold, 0, sink, value, Algorithm::SpfaSsp)
                .unwrap_or_else(|e| panic!("case {case} step {step}: oracle infeasible: {e}"));
            assert_eq!(net.total_cost(), want.cost, "case {case} step {step}");
            assert!(
                validate::check_flow(&net, 0, sink, value).is_empty(),
                "case {case} step {step}"
            );
        }
    }
}
