//! Seeded randomized tests: the solvers must agree with each other and
//! every solution must pass the independent validator (feasibility +
//! optimality). Instances are generated from `desim::SimRng`, so every
//! case reproduces from the case number in the assertion message.

use desim::SimRng;
use mincostflow::{dinic_max_flow, min_cost_flow, validate, Algorithm, FlowNetwork, FlowSolver};

/// A randomly generated problem instance.
#[derive(Clone, Debug)]
struct Instance {
    n: usize,
    edges: Vec<(usize, usize, i64, i64)>, // (from, to, cap, cost)
    target: i64,
}

/// Arbitrary-topology instance with non-negative costs.
fn random_instance(rng: &mut SimRng, max_nodes: usize) -> Instance {
    let n = rng.range_usize(2, max_nodes + 1);
    let m = rng.range_usize(1, 3 * n + 1);
    let edges = (0..m)
        .map(|_| {
            (
                rng.range_usize(0, n),
                rng.range_usize(0, n),
                rng.range_u64(1, 16) as i64,
                rng.range_u64(0, 21) as i64,
            )
        })
        .collect();
    Instance {
        n,
        edges,
        target: rng.range_u64(0, 26) as i64,
    }
}

/// Negative costs are only legal without negative cycles; generate DAGs
/// (edges strictly ascending in node index) so any cost sign is safe.
/// RASC's composition graphs are layered DAGs, so this matches real use.
fn random_dag_instance(rng: &mut SimRng, max_nodes: usize) -> Instance {
    let n = rng.range_usize(3, max_nodes + 1);
    let m = rng.range_usize(1, 3 * n + 1);
    let edges = (0..m)
        .map(|_| {
            let from = rng.range_usize(0, n - 1);
            let to = rng.range_usize(from + 1, n);
            let cap = rng.range_u64(1, 16) as i64;
            let cost = rng.range_u64(0, 31) as i64 - 10;
            (from, to, cap, cost)
        })
        .collect();
    Instance {
        n,
        edges,
        target: rng.range_u64(0, 26) as i64,
    }
}

fn build(inst: &Instance) -> FlowNetwork {
    let mut net = FlowNetwork::new(inst.n);
    for &(from, to, cap, cost) in &inst.edges {
        // Self-loops are legal but useless; skip negative-cost self-loops,
        // which make the *problem* unbounded-cost-improvable only via the
        // loop itself. (RASC composition graphs are DAGs; we still allow
        // arbitrary topologies here apart from that degenerate case.)
        if from == to && cost < 0 {
            continue;
        }
        net.add_edge(from, to, cap, cost);
    }
    net
}

/// SPFA-SSP and Dijkstra-SSP agree exactly, and both pass validation,
/// on graphs with non-negative costs.
#[test]
fn ssp_variants_agree_and_validate() {
    let mut rng = SimRng::new(0x50F7);
    for case in 0..256u32 {
        let inst = random_instance(&mut rng, 8);
        let sink = inst.n - 1;
        let mut a = build(&inst);
        let mut b = build(&inst);
        let ra = min_cost_flow(&mut a, 0, sink, inst.target, Algorithm::SpfaSsp);
        let rb = min_cost_flow(&mut b, 0, sink, inst.target, Algorithm::DijkstraSsp);
        match (ra, rb) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x, y, "case {case}");
                assert!(
                    validate::check_flow(&a, 0, sink, x.flow).is_empty(),
                    "case {case}"
                );
                assert_eq!(validate::check_optimality(&a), Ok(()), "case {case}");
                assert_eq!(validate::check_optimality(&b), Ok(()), "case {case}");
            }
            (Err(x), Err(y)) => {
                assert_eq!(x.max_flow, y.max_flow, "case {case}");
                assert_eq!(x.cost, y.cost, "case {case}");
                // Partial flow must still be valid and optimal for its value.
                assert!(
                    validate::check_flow(&a, 0, sink, x.max_flow).is_empty(),
                    "case {case}"
                );
                assert_eq!(validate::check_optimality(&a), Ok(()), "case {case}");
            }
            other => panic!("case {case}: variant disagreement: {other:?}"),
        }
    }
}

/// Cost scaling and capacity scaling agree with SSP on arbitrary
/// instances, and their flows pass independent validation.
#[test]
fn scaling_solvers_agree_with_ssp() {
    let mut rng = SimRng::new(0x5CA1);
    for case in 0..256u32 {
        let inst = random_instance(&mut rng, 7);
        let sink = inst.n - 1;
        let mut a = build(&inst);
        let ra = min_cost_flow(&mut a, 0, sink, inst.target, Algorithm::DijkstraSsp);
        for alg in [
            Algorithm::CostScaling,
            Algorithm::CapacityScaling,
            Algorithm::NetworkSimplex,
        ] {
            let mut b = build(&inst);
            let rb = min_cost_flow(&mut b, 0, sink, inst.target, alg);
            match (&ra, &rb) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x, y, "case {case}: {alg:?}");
                    assert!(
                        validate::check_flow(&b, 0, sink, y.flow).is_empty(),
                        "case {case}: {alg:?}"
                    );
                    assert_eq!(
                        validate::check_optimality(&b),
                        Ok(()),
                        "case {case}: {alg:?}"
                    );
                }
                (Err(x), Err(y)) => {
                    assert_eq!(x.max_flow, y.max_flow, "case {case}: {alg:?}");
                    assert_eq!(x.cost, y.cost, "case {case}: {alg:?}");
                }
                other => panic!("case {case}: solver disagreement ({alg:?}): {other:?}"),
            }
        }
    }
}

/// SSP handles negative arc costs; validated against the optimality
/// oracle (no negative residual cycle).
#[test]
fn negative_costs_validate() {
    let mut rng = SimRng::new(0xDA6);
    for case in 0..256u32 {
        let inst = random_dag_instance(&mut rng, 6);
        let sink = inst.n - 1;
        let mut a = build(&inst);
        let r = min_cost_flow(&mut a, 0, sink, inst.target, Algorithm::SpfaSsp);
        let value = match r {
            Ok(s) => s.flow,
            Err(e) => e.max_flow,
        };
        assert!(
            validate::check_flow(&a, 0, sink, value).is_empty(),
            "case {case}"
        );
        // Note: with negative arcs the min-cost *flow of value v* criterion
        // still demands no negative residual cycle.
        assert_eq!(validate::check_optimality(&a), Ok(()), "case {case}");
    }
}

/// The flow value reported on infeasibility equals Dinic's max flow.
#[test]
fn infeasible_max_matches_dinic() {
    let mut rng = SimRng::new(0xD1C);
    for case in 0..256u32 {
        let inst = random_instance(&mut rng, 8);
        let sink = inst.n - 1;
        let mut a = build(&inst);
        let mut b = build(&inst);
        let max = dinic_max_flow(&mut b, 0, sink, i64::MAX);
        match min_cost_flow(&mut a, 0, sink, inst.target, Algorithm::DijkstraSsp) {
            Ok(sol) => assert!(sol.flow <= max, "case {case}"),
            Err(err) => assert_eq!(err.max_flow, max, "case {case}"),
        }
    }
}

/// Solving twice after reset gives identical results (reset is sound).
#[test]
fn reset_allows_resolve() {
    let mut rng = SimRng::new(0x2E5E7);
    for case in 0..256u32 {
        let inst = random_instance(&mut rng, 6);
        let sink = inst.n - 1;
        let mut net = build(&inst);
        let r1 = min_cost_flow(&mut net, 0, sink, inst.target, Algorithm::DijkstraSsp);
        net.reset_flow();
        assert_eq!(net.total_cost(), 0, "case {case}");
        let r2 = min_cost_flow(&mut net, 0, sink, inst.target, Algorithm::DijkstraSsp);
        match (r1, r2) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "case {case}"),
            (Err(x), Err(y)) => {
                assert_eq!(x.max_flow, y.max_flow, "case {case}");
                assert_eq!(x.cost, y.cost, "case {case}");
            }
            other => panic!("case {case}: reset changed outcome: {other:?}"),
        }
    }
}

/// The arena-reuse path: building a fresh instance inside a reused
/// network (`reset(n)` + re-add edges) solves identically to a network
/// built from scratch.
#[test]
fn arena_reuse_matches_fresh_build() {
    let mut rng = SimRng::new(0xA2E4A);
    let mut arena = FlowNetwork::new(0);
    for case in 0..128u32 {
        let inst = random_instance(&mut rng, 8);
        let sink = inst.n - 1;
        arena.reset(inst.n);
        for &(from, to, cap, cost) in &inst.edges {
            if from == to && cost < 0 {
                continue;
            }
            arena.add_edge(from, to, cap, cost);
        }
        let mut fresh = build(&inst);
        let ra = min_cost_flow(&mut arena, 0, sink, inst.target, Algorithm::DijkstraSsp);
        let rb = min_cost_flow(&mut fresh, 0, sink, inst.target, Algorithm::DijkstraSsp);
        match (ra, rb) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "case {case}"),
            (Err(x), Err(y)) => {
                assert_eq!(x.max_flow, y.max_flow, "case {case}");
                assert_eq!(x.cost, y.cost, "case {case}");
            }
            other => panic!("case {case}: arena changed outcome: {other:?}"),
        }
    }
}

/// Warm-start equivalence: a retained [`FlowSolver`] solving a sequence
/// of instances on one reused arena — carrying its potential snapshot
/// from solve to solve — must report bit-identical `(flow, cost)` to a
/// fresh single-shot solve of each instance, for every algorithm.
/// (Min-cost flow of a given value has a unique cost, so `(flow, cost)`
/// equality is the right oracle even when the flow assignment differs.)
#[test]
fn warm_start_matches_fresh_solves() {
    for alg in [
        Algorithm::SpfaSsp,
        Algorithm::DijkstraSsp,
        Algorithm::DialSsp,
        Algorithm::CostScaling,
        Algorithm::CapacityScaling,
        Algorithm::NetworkSimplex,
    ] {
        let mut rng = SimRng::new(0x3A21);
        let mut solver = FlowSolver::new(alg);
        let mut arena = FlowNetwork::new(0);
        for case in 0..128u32 {
            let inst = random_instance(&mut rng, 8);
            let sink = inst.n - 1;
            arena.reset(inst.n);
            for &(from, to, cap, cost) in &inst.edges {
                if from == to && cost < 0 {
                    continue;
                }
                arena.add_edge(from, to, cap, cost);
            }
            let warm = solver.solve(&mut arena, 0, sink, inst.target);
            let mut fresh = build(&inst);
            let cold = min_cost_flow(&mut fresh, 0, sink, inst.target, alg);
            match (warm, cold) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "case {case}: {alg:?}"),
                (Err(x), Err(y)) => {
                    assert_eq!(x.max_flow, y.max_flow, "case {case}: {alg:?}");
                    assert_eq!(x.cost, y.cost, "case {case}: {alg:?}");
                }
                other => panic!("case {case}: warm start changed outcome ({alg:?}): {other:?}"),
            }
        }
    }
}

/// Warm starts must also be safe across *unrelated* graphs: interleave
/// solves of structurally different instances (sizes 2..=12) through one
/// retained solver and check each against a fresh solve.
#[test]
fn warm_start_survives_unrelated_graphs() {
    let mut rng = SimRng::new(0x77A2);
    let mut solver = FlowSolver::default();
    let mut arena = FlowNetwork::new(0);
    for case in 0..128u32 {
        let inst = random_instance(&mut rng, 12);
        let sink = inst.n - 1;
        arena.reset(inst.n);
        for &(from, to, cap, cost) in &inst.edges {
            if from == to && cost < 0 {
                continue;
            }
            arena.add_edge(from, to, cap, cost);
        }
        let warm = solver.solve(&mut arena, 0, sink, inst.target);
        let mut fresh = build(&inst);
        let cold = min_cost_flow(&mut fresh, 0, sink, inst.target, Algorithm::default());
        match (warm, cold) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "case {case}"),
            (Err(x), Err(y)) => {
                assert_eq!(x.max_flow, y.max_flow, "case {case}");
                assert_eq!(x.cost, y.cost, "case {case}");
            }
            other => panic!("case {case}: warm start changed outcome: {other:?}"),
        }
    }
}
