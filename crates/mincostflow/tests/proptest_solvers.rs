//! Property tests: the three solvers must agree with each other and every
//! solution must pass the independent validator (feasibility + optimality).

use mincostflow::{
    dinic_max_flow, min_cost_flow, validate, Algorithm, FlowNetwork,
};
use proptest::prelude::*;

/// A randomly generated problem instance.
#[derive(Clone, Debug)]
struct Instance {
    n: usize,
    edges: Vec<(usize, usize, i64, i64)>, // (from, to, cap, cost)
    target: i64,
}

fn instance_strategy(max_nodes: usize) -> impl Strategy<Value = Instance> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, 1i64..=15, 0i64..=20);
        (proptest::collection::vec(edge, 1..=3 * n), 0i64..=25).prop_map(
            move |(edges, target)| Instance { n, edges, target },
        )
    })
}

/// Negative costs are only legal without negative cycles; generate DAGs
/// (edges strictly ascending in node index) so any cost sign is safe.
/// RASC's composition graphs are layered DAGs, so this matches real use.
fn dag_instance_strategy(max_nodes: usize) -> impl Strategy<Value = Instance> {
    (3usize..=max_nodes).prop_flat_map(move |n| {
        let edge = (0..n - 1, 0..n, 1i64..=15, -10i64..=20).prop_map(move |(a, b, cap, cost)| {
            let to = (a + 1).max(b.min(n - 1)).max(a + 1);
            (a, to.min(n - 1).max(a + 1), cap, cost)
        });
        (proptest::collection::vec(edge, 1..=3 * n), 0i64..=25).prop_map(
            move |(edges, target)| Instance { n, edges, target },
        )
    })
}

fn build(inst: &Instance) -> FlowNetwork {
    let mut net = FlowNetwork::new(inst.n);
    for &(from, to, cap, cost) in &inst.edges {
        // Self-loops are legal but useless; skip negative-cost self-loops,
        // which make the *problem* unbounded-cost-improvable only via the
        // loop itself. (RASC composition graphs are DAGs; we still allow
        // arbitrary topologies here apart from that degenerate case.)
        if from == to && cost < 0 {
            continue;
        }
        net.add_edge(from, to, cap, cost);
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// SPFA-SSP and Dijkstra-SSP agree exactly, and both pass validation,
    /// on graphs with non-negative costs.
    #[test]
    fn ssp_variants_agree_and_validate(inst in instance_strategy(8)) {
        let sink = inst.n - 1;
        let mut a = build(&inst);
        let mut b = build(&inst);
        let ra = min_cost_flow(&mut a, 0, sink, inst.target, Algorithm::SpfaSsp);
        let rb = min_cost_flow(&mut b, 0, sink, inst.target, Algorithm::DijkstraSsp);
        match (ra, rb) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x, y);
                prop_assert!(validate::check_flow(&a, 0, sink, x.flow).is_empty());
                prop_assert_eq!(validate::check_optimality(&a), Ok(()));
                prop_assert_eq!(validate::check_optimality(&b), Ok(()));
            }
            (Err(x), Err(y)) => {
                prop_assert_eq!(x.max_flow, y.max_flow);
                prop_assert_eq!(x.cost, y.cost);
                // Partial flow must still be valid and optimal for its value.
                prop_assert!(validate::check_flow(&a, 0, sink, x.max_flow).is_empty());
                prop_assert_eq!(validate::check_optimality(&a), Ok(()));
            }
            other => prop_assert!(false, "variant disagreement: {:?}", other),
        }
    }

    /// Cost scaling and capacity scaling agree with SSP on arbitrary
    /// instances, and their flows pass independent validation.
    #[test]
    fn scaling_solvers_agree_with_ssp(inst in instance_strategy(7)) {
        let sink = inst.n - 1;
        let mut a = build(&inst);
        let ra = min_cost_flow(&mut a, 0, sink, inst.target, Algorithm::DijkstraSsp);
        for alg in [Algorithm::CostScaling, Algorithm::CapacityScaling] {
            let mut b = build(&inst);
            let rb = min_cost_flow(&mut b, 0, sink, inst.target, alg);
            match (&ra, &rb) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(x, y, "{:?}", alg);
                    prop_assert!(validate::check_flow(&b, 0, sink, y.flow).is_empty());
                    prop_assert_eq!(validate::check_optimality(&b), Ok(()), "{:?}", alg);
                }
                (Err(x), Err(y)) => {
                    prop_assert_eq!(x.max_flow, y.max_flow, "{:?}", alg);
                    prop_assert_eq!(x.cost, y.cost, "{:?}", alg);
                }
                other => prop_assert!(false, "solver disagreement ({:?}): {:?}", alg, other),
            }
        }
    }

    /// SSP handles negative arc costs; validated against the optimality
    /// oracle (no negative residual cycle).
    #[test]
    fn negative_costs_validate(inst in dag_instance_strategy(6)) {
        let sink = inst.n - 1;
        let mut a = build(&inst);
        let r = min_cost_flow(&mut a, 0, sink, inst.target, Algorithm::SpfaSsp);
        let value = match r { Ok(s) => s.flow, Err(e) => e.max_flow };
        prop_assert!(validate::check_flow(&a, 0, sink, value).is_empty());
        // Note: with negative arcs the min-cost *flow of value v* criterion
        // still demands no negative residual cycle.
        prop_assert_eq!(validate::check_optimality(&a), Ok(()));
    }

    /// The flow value reported on infeasibility equals Dinic's max flow.
    #[test]
    fn infeasible_max_matches_dinic(inst in instance_strategy(8)) {
        let sink = inst.n - 1;
        let mut a = build(&inst);
        let mut b = build(&inst);
        let max = dinic_max_flow(&mut b, 0, sink, i64::MAX);
        match min_cost_flow(&mut a, 0, sink, inst.target, Algorithm::DijkstraSsp) {
            Ok(sol) => prop_assert!(sol.flow <= max),
            Err(err) => prop_assert_eq!(err.max_flow, max),
        }
    }

    /// Solving twice after reset gives identical results (reset is sound).
    #[test]
    fn reset_allows_resolve(inst in instance_strategy(6)) {
        let sink = inst.n - 1;
        let mut net = build(&inst);
        let r1 = min_cost_flow(&mut net, 0, sink, inst.target, Algorithm::DijkstraSsp);
        net.reset_flow();
        prop_assert_eq!(net.total_cost(), 0);
        let r2 = min_cost_flow(&mut net, 0, sink, inst.target, Algorithm::DijkstraSsp);
        match (r1, r2) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(x), Err(y)) => {
                prop_assert_eq!(x.max_flow, y.max_flow);
                prop_assert_eq!(x.cost, y.cost);
            }
            other => prop_assert!(false, "reset changed outcome: {:?}", other),
        }
    }
}
