//! Randomized basis-equivalence battery: warm-basis simplex repair
//! must be **bit-identical in value and cost** to a cold network-simplex
//! solve of the damaged network, across seeds and mutation kinds.
//!
//! The claim under test is the repair ladder's top tier
//! (`RepairTier::WarmBasis`): re-pivoting a retained spanning-tree
//! basis after crash / capacity / price / rate events is not an
//! approximation — it lands on exactly the optimum a from-scratch solve
//! finds, because the slack-arc encoding turns every event into a
//! min-cost circulation whose optimum *is* the cold answer (see
//! `simplex.rs` module docs). Each case therefore asserts, against an
//! independently rebuilt damaged instance:
//!
//! * same flow value (`Ok`/`Err` agreement included),
//! * same total cost, bit for bit, and a consistent
//!   [`RepairOutcome::cost_delta`],
//! * primal feasibility via [`validate::check_flow`] and dual
//!   feasibility of the repaired basis's own potentials via
//!   [`validate::check_certificate`],
//! * the repair really ran on the warm-basis tier.
//!
//! Style mirrors `desim/tests/queue_equivalence.rs`: seeded xorshift
//! instances, an `Op` enum of scripted mutations, and per-case
//! divergence messages carrying the seed for replay.

use mincostflow::validate::{check_certificate, check_flow};
use mincostflow::{Algorithm, EdgeId, FlowNetwork, FlowSolver, NetworkSimplex, RepairTier};

/// Deterministic xorshift64, the workspace's stock test generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// One scripted mutation of a solved instance.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Crash-style arc deletions (1–3 edges at once).
    ArcDeletion,
    /// NIC-degradation-style capacity cut on one edge.
    CapacityCut,
    /// Re-pricing of one edge (cost bump or drop).
    CostBump,
    /// Removal of a non-terminal node: every incident edge dies.
    NodeRemoval,
}

const OPS: [Op; 4] = [
    Op::ArcDeletion,
    Op::CapacityCut,
    Op::CostBump,
    Op::NodeRemoval,
];

/// A random connected instance: a source→sink chain guarantees
/// reachability, random extra edges supply the re-routing alternatives
/// a repair needs. Chain costs are kept ≥ 2 so the total cost mass
/// always leaves the super-arc's re-pricing headroom intact (see
/// `SimplexBasis::reprice`), which pins `reprice_edge` to the warm
/// tier in this suite.
struct Instance {
    n: usize,
    edges: Vec<(usize, usize, i64, i64)>,
    target: i64,
}

fn random_instance(rng: &mut Rng) -> Instance {
    let n = 10 + rng.below(11) as usize; // 10..=20 nodes
    let mut edges = Vec::new();
    for v in 0..n - 1 {
        let cap = 1 + rng.below(9) as i64;
        let cost = 2 + rng.below(14) as i64;
        edges.push((v, v + 1, cap, cost));
    }
    let extras = n + rng.below(n as u64) as usize;
    for _ in 0..extras {
        let u = rng.below(n as u64) as usize;
        let v = rng.below(n as u64) as usize;
        if u == v {
            continue;
        }
        let cap = 1 + rng.below(12) as i64;
        let cost = rng.below(16) as i64;
        edges.push((u, v, cap, cost));
    }
    let target = 1 + rng.below(20) as i64;
    Instance { n, edges, target }
}

fn build(inst: &Instance) -> (FlowNetwork, Vec<EdgeId>) {
    let mut net = FlowNetwork::new(inst.n);
    let ids = inst
        .edges
        .iter()
        .map(|&(u, v, cap, cost)| net.add_edge(u, v, cap, cost))
        .collect();
    (net, ids)
}

/// Cold oracle: solve the mutated instance from scratch with network
/// simplex and return `(flow, cost)` regardless of feasibility.
fn cold_solve(inst: &Instance, target: i64) -> (i64, i64) {
    let (mut net, _) = build(inst);
    match NetworkSimplex.solve(&mut net, 0, inst.n - 1, target) {
        Ok(s) => (s.flow, s.cost),
        Err(e) => (e.max_flow, e.cost),
    }
}

#[test]
fn warm_basis_repair_matches_cold_solve_across_mutations() {
    let mut divergences = Vec::new();
    for seed in 0..72u64 {
        let mut rng = Rng(0x9E3779B97F4A7C15 ^ (seed + 1));
        let base = random_instance(&mut rng);
        for op in OPS {
            let case = format!("seed {seed} op {op:?}");
            let (mut net, ids) = build(&base);
            let mut solver = FlowSolver::new(Algorithm::NetworkSimplex);
            let sink = base.n - 1;
            let base_flow;
            let base_cost;
            match solver.solve(&mut net, 0, sink, base.target) {
                Ok(s) => {
                    base_flow = s.flow;
                    base_cost = s.cost;
                }
                Err(e) => {
                    base_flow = e.max_flow;
                    base_cost = e.cost;
                }
            }
            // Mutate the live network through the solver and the shadow
            // instance for the oracle.
            let mut mutated = Instance {
                n: base.n,
                edges: base.edges.clone(),
                target: base.target,
            };
            let out = match op {
                Op::ArcDeletion => {
                    let kills = 1 + rng.below(3) as usize;
                    let mut dead = Vec::new();
                    for _ in 0..kills {
                        let k = rng.below(ids.len() as u64) as usize;
                        if !dead.contains(&ids[k]) {
                            dead.push(ids[k]);
                            mutated.edges[k].2 = 0;
                        }
                    }
                    solver.repair_deletions(&mut net, &dead)
                }
                Op::CapacityCut => {
                    let k = rng.below(ids.len() as u64) as usize;
                    let new_cap = rng.below(mutated.edges[k].2 as u64 + 1) as i64;
                    mutated.edges[k].2 = new_cap;
                    solver.cut_capacity(&mut net, ids[k], new_cap)
                }
                Op::CostBump => {
                    let k = rng.below(ids.len() as u64) as usize;
                    let new_cost = 2 + rng.below(14) as i64;
                    mutated.edges[k].3 = new_cost;
                    solver
                        .reprice_edge(&mut net, ids[k], new_cost)
                        .expect("reprice headroom is guaranteed by instance construction")
                }
                Op::NodeRemoval => {
                    let victim = 1 + rng.below(base.n as u64 - 2) as usize;
                    let mut dead = Vec::new();
                    for (k, &(u, v, _, _)) in base.edges.iter().enumerate() {
                        if u == victim || v == victim {
                            dead.push(ids[k]);
                            mutated.edges[k].2 = 0;
                        }
                    }
                    solver.repair_deletions(&mut net, &dead)
                }
            };
            if out.tier != RepairTier::WarmBasis {
                divergences.push(format!("{case}: repair ran on {:?}", out.tier));
                continue;
            }
            let repaired_flow = base_flow - out.shortfall;
            let repaired_cost = net.total_cost();
            let (want_flow, want_cost) = cold_solve(&mutated, base.target);
            if repaired_flow != want_flow {
                divergences.push(format!("{case}: flow {repaired_flow} vs cold {want_flow}"));
            }
            if repaired_cost != want_cost {
                divergences.push(format!("{case}: cost {repaired_cost} vs cold {want_cost}"));
            }
            if base_cost + out.cost_delta != repaired_cost {
                divergences.push(format!(
                    "{case}: cost_delta {} inconsistent ({base_cost} + it != {repaired_cost})",
                    out.cost_delta
                ));
            }
            let violations = check_flow(&net, 0, sink, repaired_flow);
            if !violations.is_empty() {
                divergences.push(format!("{case}: infeasible repair {violations:?}"));
            }
            let pot = solver
                .certificate_potentials()
                .expect("warm-basis repair retains its certificate");
            if let Err(v) = check_certificate(&net, pot) {
                divergences.push(format!("{case}: dual-infeasible basis {v:?}"));
            }
        }
    }
    assert!(
        divergences.is_empty(),
        "{} divergence(s):\n{}",
        divergences.len(),
        divergences.join("\n")
    );
}

#[test]
fn repeated_mixed_repairs_stay_cold_equivalent() {
    // One retained basis absorbs a whole adaptation history — crashes,
    // cuts, re-pricings, rate changes — and must stay bit-identical to
    // a cold solve of the cumulative state after every single step.
    for seed in 0..24u64 {
        let mut rng = Rng(0xD1B54A32D192ED03 ^ (seed + 1));
        let base = random_instance(&mut rng);
        let (mut net, ids) = build(&base);
        let sink = base.n - 1;
        let mut solver = FlowSolver::new(Algorithm::NetworkSimplex);
        let mut cur_flow = match solver.solve(&mut net, 0, sink, base.target) {
            Ok(s) => s.flow,
            Err(e) => e.max_flow,
        };
        let mut shadow = Instance {
            n: base.n,
            edges: base.edges.clone(),
            target: base.target,
        };
        let mut target = base.target;
        for step in 0..8 {
            let case = format!("seed {seed} step {step}");
            match rng.below(5) {
                0 => {
                    let k = rng.below(ids.len() as u64) as usize;
                    shadow.edges[k].2 = 0;
                    let out = solver.repair_deletions(&mut net, &[ids[k]]);
                    assert_eq!(out.tier, RepairTier::WarmBasis, "{case} (delete)");
                }
                1 => {
                    let k = rng.below(ids.len() as u64) as usize;
                    let new_cap = rng.below(shadow.edges[k].2 as u64 + 1) as i64;
                    shadow.edges[k].2 = new_cap;
                    let out = solver.cut_capacity(&mut net, ids[k], new_cap);
                    assert_eq!(out.tier, RepairTier::WarmBasis, "{case} (cut)");
                }
                2 => {
                    let k = rng.below(ids.len() as u64) as usize;
                    let new_cost = 2 + rng.below(14) as i64;
                    shadow.edges[k].3 = new_cost;
                    let out = solver
                        .reprice_edge(&mut net, ids[k], new_cost)
                        .expect("reprice headroom is guaranteed by instance construction");
                    assert_eq!(out.tier, RepairTier::WarmBasis, "{case} (reprice)");
                }
                3 => {
                    let delta = 1 + rng.below(4) as i64;
                    target += delta;
                    let out = solver.increase_flow(&mut net, 0, sink, delta);
                    assert_eq!(out.tier, RepairTier::WarmBasis, "{case} (increase)");
                }
                _ => {
                    if cur_flow == 0 {
                        continue;
                    }
                    let delta = 1 + rng.below(cur_flow as u64) as i64;
                    target = cur_flow - delta;
                    let out = solver.decrease_flow(&mut net, 0, sink, delta);
                    assert_eq!(out.tier, RepairTier::WarmBasis, "{case} (decrease)");
                    assert_eq!(out.shortfall, 0, "{case}: decrease can never fall short");
                }
            }
            let (want_flow, want_cost) = cold_solve(&shadow, target);
            cur_flow = want_flow;
            assert_eq!(net.total_cost(), want_cost, "{case} diverged in cost");
            assert!(
                check_flow(&net, 0, sink, want_flow).is_empty(),
                "{case} left an infeasible flow"
            );
            let pot = solver.certificate_potentials().expect("basis stays valid");
            check_certificate(&net, pot).unwrap_or_else(|v| panic!("{case}: {v:?}"));
        }
    }
}
