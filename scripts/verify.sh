#!/usr/bin/env bash
# Tier-1 verification, offline-safe: build, tests, formatting, lints.
# No network access is required (the workspace has zero external
# dependencies); CARGO_NET_OFFLINE makes any accidental regression to
# a registry dependency fail fast instead of hanging.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q
cargo fmt --all -- --check
cargo clippy --all-targets -- -D warnings

# Audit-enabled pass: every engine in the runtime test surface runs
# with the invariant auditor checkpointing (conservation, ledger,
# rollback, delivery, liveness) — the suites must stay green with the
# checks on.
RASC_AUDIT=1 cargo test -q -p rasc-core -p workload

# Microbenchmark smoke run: small fixed-seed iterations; exercises the
# compose/solver hot paths (including the steady-state zero-allocation
# assert) without touching the committed BENCH_compose.json.
cargo run --release -q --bin repro -- bench --quick

# Audited fault-injection soak: 60 seeded runs across fault profiles
# and composers; exits non-zero on any invariant violation or a
# serial-vs-parallel digest mismatch. Takes well under 30 s.
cargo run --release -q --bin repro -- chaos --quick

echo "verify: all checks passed"
