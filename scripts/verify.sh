#!/usr/bin/env bash
# Tier-1 verification, offline-safe: build, tests, formatting, lints.
# No network access is required (the workspace has zero external
# dependencies); CARGO_NET_OFFLINE makes any accidental regression to
# a registry dependency fail fast instead of hanging.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q
cargo fmt --all -- --check
cargo clippy --all-targets -- -D warnings

# Audit-enabled pass: every engine in the runtime test surface runs
# with the invariant auditor checkpointing (conservation, ledger,
# rollback, delivery, liveness) — the suites must stay green with the
# checks on.
RASC_AUDIT=1 cargo test -q -p rasc-core -p workload

# Microbenchmark smoke run: small fixed-seed iterations; exercises the
# compose/solver hot paths (including the steady-state zero-allocation
# assert) without touching the committed BENCH_compose.json. The smoke
# numbers are then diffed against the committed ones: any named hot-path
# benchmark (compose*/solver*/adapt*) that comes out more than 2x slower
# prints a WARNING — quick-mode runs are noisy and machines differ, so
# this is a tripwire for accidental hot-path regressions, not a gate.
BENCH_OUT=$(mktemp)
cargo run --release -q --bin repro -- bench --quick | tee "$BENCH_OUT"
if [ -f BENCH_compose.json ]; then
  awk '
    FNR == NR {
      if ($0 ~ /"name"/) {
        split($0, q, "\"")                     # q[4] = benchmark name
        v = $0
        sub(/.*"ns_per_op": /, "", v)
        sub(/,.*/, "", v)
        base[q[4]] = v + 0
      }
      next
    }
    $3 == "ns/op" && $1 ~ /^(compose|solver|adapt)/ {
      if (base[$1] > 0 && $2 > 2 * base[$1])
        printf "verify: WARNING %s regressed %.1fx vs committed (%.0f -> %.0f ns/op)\n", \
            $1, $2 / base[$1], base[$1], $2
    }
  ' BENCH_compose.json "$BENCH_OUT"
fi
rm -f "$BENCH_OUT"

# Audited fault-injection soak: 60 seeded runs across fault profiles
# and composers; exits non-zero on any invariant violation or a
# serial-vs-parallel digest mismatch. Takes well under 30 s.
cargo run --release -q --bin repro -- chaos --quick

echo "verify: all checks passed"
