#!/usr/bin/env bash
# Tier-1 verification, offline-safe: build, tests, formatting, lints.
# No network access is required (the workspace has zero external
# dependencies); CARGO_NET_OFFLINE makes any accidental regression to
# a registry dependency fail fast instead of hanging.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q
cargo fmt --all -- --check
cargo clippy --all-targets -- -D warnings

# Microbenchmark smoke run: small fixed-seed iterations; exercises the
# compose/solver hot paths (including the steady-state zero-allocation
# assert) without touching the committed BENCH_compose.json.
cargo run --release -q --bin repro -- bench --quick

echo "verify: all checks passed"
