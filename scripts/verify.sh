#!/usr/bin/env bash
# Tier-1 verification, offline-safe: build, tests, formatting, lints.
# No network access is required (the workspace has zero external
# dependencies); CARGO_NET_OFFLINE makes any accidental regression to
# a registry dependency fail fast instead of hanging.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q
cargo fmt --all -- --check
cargo clippy --all-targets -- -D warnings

# Audit-enabled pass: every engine in the runtime test surface runs
# with the invariant auditor checkpointing (conservation, ledger,
# rollback, delivery, liveness) — the suites must stay green with the
# checks on.
RASC_AUDIT=1 cargo test -q -p rasc-core -p workload

# Event-queue backend equivalence: the timer-wheel backend must pop
# bit-for-bit the same (time, seq) order as the binary-heap reference
# across seeded randomized schedules. Part of the workspace suite, but
# named here so a backend change can never slip past verification.
cargo test -q -p desim --test queue_equivalence

# Warm-basis repair equivalence: randomized arc-deletion / capacity-cut /
# cost-bump / node-removal events repaired on the retained simplex basis
# must match a cold network-simplex solve bit-for-bit in value and cost,
# and present a dual-feasible certificate. Named for the same reason as
# the queue suite: a simplex or repair-ladder change must never slip
# past verification.
cargo test -q -p mincostflow --test basis_equivalence

# Thousand-node admission equivalences: (a) the capacity-bucket index
# must enumerate exactly the linear reference's candidate sets across
# topology families, mutation histories, and mid-transaction rollback
# points; (b) batch admission must be digest-equal between one worker
# and many, including under injected host-capacity conflicts. Named so
# an index or reconcile change can never slip past verification.
cargo test -q -p rasc-core --test view_index_equivalence --test batch_determinism

# Region-sharded admission equivalences: (a) a one-shard sharded
# pipeline must be digest-identical to the global batch pipeline (both
# standalone and through Engine::submit_batch), and multi-shard
# outcomes must be deterministic across worker counts; (b) replay
# losers rolled back mid-transaction on digest-patched views must
# leave the ledger and capacity index bit-equal to base + admitted
# reservations. Named so a shard-routing, digest, or reconcile change
# can never slip past verification.
cargo test -q -p rasc-core --test shard_equivalence --test shard_rollback

# Microbenchmark smoke run: small fixed-seed iterations; exercises the
# compose/solver hot paths, the data plane, and the batch-admission
# pipeline (including the steady-state allocation asserts) without
# touching the committed BENCH_compose.json. The smoke numbers are then
# diffed against the committed ones, direction keyed off each line's
# unit token: a ns/op hot-path benchmark (compose*/solver*/adapt*) more
# than 2x slower, a units/s dataplane/* or admission/* rate at less than
# half the committed throughput (for admission/apps_per_sec entries that
# inverted direction is the ISSUE's >2x tripwire), or an x-unit
# adapt/basis_* speedup ratio at less than half the committed one
# (ratios are bigger-is-better, so the comparison is inverted like
# units/s), prints a WARNING — quick-mode runs are noisy and machines
# differ, so this is a tripwire for accidental regressions, not a gate.
#
# Parallel-scaling entries are excluded on serial machines: a committed
# entry annotated "ap1" was itself measured on a 1-core box (pool
# overhead, not scaling), and when the *current* box has one CPU, every
# pooled/parallel entry measures overhead too — comparing either against
# a multicore reference would warn about the hardware, not the code.
# Entries now carry an explicit per-measurement "threads" field (the
# effective desim::pool worker count), so the skip derives from the
# JSON itself; the name regex stays as a fallback for older committed
# files without the field. The admission/sharded_* units/s entries need
# no new rule — the inverted units/s tripwire above already keys off
# the ^admission/ prefix.
BENCH_OUT=$(mktemp)
cargo run --release -q --bin repro -- bench --quick | tee "$BENCH_OUT"
CORES=$(nproc 2>/dev/null || echo 1)
if [ -f BENCH_compose.json ]; then
  awk -v cores="$CORES" '
    FNR == NR {
      if ($0 ~ /"name"/) {
        split($0, q, "\"")          # q[4] = name, q[8] = unit
        v = $0
        sub(/.*"value": /, "", v)
        sub(/,.*/, "", v)
        base[q[4]] = v + 0
        unit[q[4]] = q[8]
        if ($0 ~ /"note": "ap1"/) ap1[q[4]] = 1
        if ($0 ~ /"threads": /) {
          t = $0
          sub(/.*"threads": /, "", t)
          sub(/[,}].*/, "", t)
          thr[q[4]] = t + 0
        }
      }
      next
    }
    function scaling_skip(name) {
      # Skip parallel-scaling comparisons when either side of the diff
      # ran on a 1-core box. The committed "threads" field is the
      # authoritative signal; the name regex is the legacy fallback.
      if (ap1[name]) return 1
      if (cores + 0 <= 1 && thr[name] + 0 > 1) return 1
      if (cores + 0 <= 1 && name ~ /(pooled|parallel)/) return 1
      return 0
    }
    $3 == "ns/op" && $1 ~ /^(compose|solver|adapt)/ && !scaling_skip($1) {
      if (unit[$1] == "ns/op" && base[$1] > 0 && $2 > 2 * base[$1])
        printf "verify: WARNING %s regressed %.1fx vs committed (%.0f -> %.0f ns/op)\n", \
            $1, $2 / base[$1], base[$1], $2
    }
    $3 == "units/s" && $1 ~ /^(dataplane|admission)\// && !scaling_skip($1) {
      if (unit[$1] == "units/s" && base[$1] > 0 && $2 < base[$1] / 2)
        printf "verify: WARNING %s slowed to %.2fx of committed (%.0f -> %.0f units/s)\n", \
            $1, $2 / base[$1], base[$1], $2
    }
    # (admission/select_sublinearity is deliberately not diffed: a
    # ratio of two 3-sample quick-mode timings is too noisy to compare
    # against the committed full-run value without false positives.)
    $3 == "x" && $1 ~ /^adapt\/basis_/ && !scaling_skip($1) {
      if (unit[$1] == "x" && base[$1] > 0 && $2 < base[$1] / 2)
        printf "verify: WARNING %s speedup fell to %.2fx of committed (%.1fx -> %.1fx)\n", \
            $1, $2 / base[$1], base[$1], $2
    }
  ' BENCH_compose.json "$BENCH_OUT"
fi
rm -f "$BENCH_OUT"

# Audited fault-injection soak: 180 seeded runs across fault profiles,
# composers, and data-plane variants (binary-heap and timer-wheel
# backends, per-unit and batched transfers); exits non-zero on any
# invariant violation, a serial-vs-parallel digest mismatch, or any
# per-cell digest that differs between batch-1 backends. RASC_AUDIT=1
# is redundant belt-and-braces (the soak forces auditing on) but keeps
# the env-driven default covered too. Takes well under 30 s.
RASC_AUDIT=1 cargo run --release -q --bin repro -- chaos --quick

echo "verify: all checks passed"
