//! # RASC — RAte Splitting Composition
//!
//! A from-scratch Rust reproduction of *"RASC: Dynamic Rate Allocation
//! for Distributed Stream Processing Applications"* (Drougas &
//! Kalogeraki, IPDPS 2007): a distributed stream processing system that
//! composes applications dynamically while meeting their rate demands,
//! by reducing component selection + rate assignment to a minimum-cost
//! flow problem — splitting a service across several nodes whenever one
//! node alone cannot sustain the required rate.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `desim` | deterministic discrete-event kernel |
//! | [`net`] | `simnet` | wide-area network substrate (NICs, topologies) |
//! | [`pastry`] | `overlay` | Pastry DHT: routing, discovery, replication |
//! | [`flow`] | `mincostflow` | min-cost flow solvers (SSP, cost scaling) |
//! | [`monitoring`] | `monitor` | windows, meters, resource vectors (§3.2) |
//! | [`scheduling`] | `sched` | LLF/EDF/FIFO data-unit schedulers (§3.4) |
//! | [`core`] | `rasc-core` | the system: model, composition, runtime |
//! | [`workloads`] | `workload` | the paper's §4.1 scenario + generators |
//!
//! ## Quick start
//!
//! ```
//! use rasc::core::compose::ComposerKind;
//! use rasc::core::engine::Engine;
//! use rasc::core::model::{ServiceCatalog, ServiceRequest};
//!
//! let catalog = ServiceCatalog::synthetic(4, 1);
//! let mut engine = rasc::core::engine::Engine::builder(8, catalog, 1)
//!     .composer(ComposerKind::MinCost)
//!     .build();
//! let app = engine.submit(ServiceRequest::chain(&[0, 2], 8.0, 0, 7)).unwrap();
//! engine.run_for_secs(10.0);
//! let report = engine.report();
//! assert!(report.delivered > 0);
//! let _ = (app, Engine::builder); // items exist
//! ```
//!
//! Run `cargo run --release -p rasc-bench --bin repro -- all` to
//! regenerate every figure of the paper's evaluation; see EXPERIMENTS.md
//! for the recorded results and DESIGN.md for the architecture.

#![forbid(unsafe_code)]

pub use rasc_core as core;

/// Deterministic discrete-event simulation kernel.
pub mod sim {
    pub use desim::*;
}

/// Wide-area network substrate.
pub mod net {
    pub use simnet::*;
}

/// Pastry overlay + DHT service registry.
pub mod pastry {
    pub use overlay::*;
}

/// Minimum-cost flow solvers.
pub mod flow {
    pub use mincostflow::*;
}

/// Resource monitoring primitives (paper §3.2).
pub mod monitoring {
    pub use monitor::*;
}

/// Data-unit scheduling policies (paper §3.4).
pub mod scheduling {
    pub use sched::*;
}

/// Workload generators and the paper's experimental scenario.
pub mod workloads {
    pub use workload::*;
}
