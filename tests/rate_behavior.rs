//! Integration: the system's *rate* behaviour — the property RASC is
//! named for. Streams are delivered at their requested rates; splitting
//! preserves rates; rate ratios scale traffic correctly end-to-end.

use rasc::core::compose::ComposerKind;
use rasc::core::engine::Engine;
use rasc::core::model::{Service, ServiceCatalog, ServiceRequest};
use rasc::net::{kbps, TopologyBuilder};
use rasc::sim::SimDuration;

fn uncongested_engine(catalog: ServiceCatalog, n: usize, seed: u64) -> Engine {
    let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(15));
    for _ in 0..n {
        b.node(kbps(5_000.0), kbps(5_000.0));
    }
    let offers: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            if v + 2 < n {
                (0..catalog.len()).collect()
            } else {
                vec![]
            }
        })
        .collect();
    Engine::builder(n, catalog, seed)
        .topology(b.build())
        .offers(offers)
        .composer(ComposerKind::MinCost)
        .build()
}

#[test]
fn delivery_rate_matches_the_request() {
    let catalog = ServiceCatalog::synthetic(3, 3);
    let mut engine = uncongested_engine(catalog, 8, 3);
    let rate = 25.0;
    engine
        .submit(ServiceRequest::chain(&[0, 1, 2], rate, 6, 7))
        .unwrap();
    engine.run_for_secs(40.0);
    let r = engine.report();
    // Units delivered per second of stream time should track the rate
    // (allow slack for the start-up transient and in-flight tail).
    let measured = r.delivered as f64 / 40.0;
    assert!(
        (measured - rate).abs() / rate < 0.1,
        "requested {rate} du/s, measured {measured:.2} du/s"
    );
    assert!(
        r.delivered_fraction() > 0.98,
        "uncongested run dropped units"
    );
    assert_eq!(r.out_of_order, 0, "single-path stream reordered");
}

#[test]
fn split_streams_still_deliver_the_full_rate() {
    // Two hosts of ~half capacity each force a split; the destination
    // must still see the whole stream.
    let catalog = ServiceCatalog::synthetic(1, 5);
    let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(15));
    b.node(kbps(5_000.0), kbps(5_000.0)); // 0: source
    b.node(kbps(400.0), kbps(400.0)); // 1: half-host
    b.node(kbps(400.0), kbps(400.0)); // 2: half-host
    b.node(kbps(5_000.0), kbps(5_000.0)); // 3: destination
    let mut engine = Engine::builder(4, catalog, 5)
        .topology(b.build())
        .offers(vec![vec![], vec![0], vec![0], vec![]])
        .composer(ComposerKind::MinCost)
        .build();
    let rate = 55.0; // > one host's ~36 du/s usable, < their sum
    let app = engine
        .submit(ServiceRequest::chain(&[0], rate, 0, 3))
        .expect("split composition");
    assert!(engine.app_graph(app).has_splitting());
    engine.run_for_secs(40.0);
    let r = engine.report();
    let measured = r.delivered as f64 / 40.0;
    assert!(
        (measured - rate).abs() / rate < 0.12,
        "requested {rate} du/s through a split, measured {measured:.2}"
    );
    assert!(
        r.delivered_fraction() > 0.9,
        "split stream lost {:.1}%",
        100.0 * (1.0 - r.delivered_fraction())
    );
}

#[test]
fn rate_ratio_scales_bandwidth_not_unit_count() {
    // A down-sampling service (R = 0.5): the destination receives the
    // same *number* of units but half the *bits*.
    let catalog = ServiceCatalog::new(vec![Service {
        id: 0,
        name: "downsample".into(),
        exec_time: SimDuration::from_millis(2),
        rate_ratio: 0.5,
    }]);
    let mut engine = uncongested_engine(catalog, 6, 7);
    engine
        .submit(ServiceRequest::chain(&[0], 10.0, 4, 5))
        .unwrap();
    engine.run_for_secs(20.0);
    let r = engine.report();
    assert!(r.delivered > 0);
    // Source emits delivery_rate / 0.5 = 20 du/s of input units.
    let measured = r.generated as f64 / 20.0;
    assert!(
        (measured - 20.0).abs() < 2.0,
        "source rate should be ~20 du/s, measured {measured:.1}"
    );
    assert!(r.delivered_fraction() > 0.95);
}

#[test]
fn overload_is_shed_not_amplified() {
    // Demand beyond serviceable capacity: the system sheds load through
    // its drop mechanisms but keeps serving the rest — no collapse.
    let catalog = ServiceCatalog::synthetic(2, 11);
    let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(15));
    b.node(kbps(5_000.0), kbps(5_000.0));
    b.node(kbps(300.0), kbps(300.0)); // tight middle host
    b.node(kbps(5_000.0), kbps(5_000.0));
    let mut engine = Engine::builder(3, catalog, 11)
        .topology(b.build())
        .offers(vec![vec![], vec![0, 1], vec![]])
        .composer(ComposerKind::MinCost)
        .build();
    // Admit a stream near the host's limit, then run long enough for
    // background jitter to cause transient overload.
    engine
        .submit(ServiceRequest::chain(&[0], 25.0, 0, 2))
        .unwrap();
    engine.run_for_secs(60.0);
    let r = engine.report();
    assert!(r.delivered_fraction() > 0.7, "collapse: {:?}", r);
    // Whatever was dropped is accounted for by an explicit cause.
    assert!(r.delivered + r.total_drops() <= r.generated);
}
