//! Integration: composed execution graphs are *valid* — services land
//! only on nodes that offer them, rates satisfy the request, and the
//! engine's runtime actually delivers along the composed paths.

use rasc::core::compose::ComposerKind;
use rasc::core::engine::Engine;
use rasc::core::model::{ServiceCatalog, ServiceRequest};
use rasc::net::{kbps, TopologyBuilder};
use rasc::sim::SimDuration;

fn engine_with(kind: ComposerKind, seed: u64) -> Engine {
    let catalog = ServiceCatalog::synthetic(5, seed);
    let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(20));
    for _ in 0..10 {
        b.node(kbps(2_000.0), kbps(2_000.0));
    }
    Engine::builder(10, catalog, seed)
        .topology(b.build())
        .offers(vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![3, 4],
            vec![4, 0],
            vec![0, 2],
            vec![1, 3],
            vec![2, 4],
            vec![],
            vec![],
        ])
        .composer(kind)
        .build()
}

#[test]
fn placements_respect_the_service_directory() {
    for kind in ComposerKind::ALL {
        let mut engine = engine_with(kind, 17);
        let app = engine
            .submit(ServiceRequest::chain(&[0, 2, 4], 15.0, 8, 9))
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        let graph = engine.app_graph(app).clone();
        for stages in &graph.substreams {
            for stage in stages {
                for p in &stage.placements {
                    assert!(
                        engine.directory().hosts(p.node, stage.service),
                        "{kind:?} placed service {} on node {} which does not offer it",
                        stage.service,
                        p.node
                    );
                    assert!(p.rate > 0.0, "zero-rate placement");
                }
            }
        }
    }
}

#[test]
fn stage_rates_sum_to_the_requirement() {
    for kind in ComposerKind::ALL {
        let mut engine = engine_with(kind, 23);
        let app = engine
            .submit(ServiceRequest::chain(&[1, 3], 22.5, 8, 9))
            .unwrap();
        let graph = engine.app_graph(app);
        for stages in &graph.substreams {
            for stage in stages {
                let total = stage.total_rate();
                assert!(
                    (total - 22.5).abs() < 1e-3,
                    "{kind:?}: stage rate {total} != 22.5"
                );
            }
        }
    }
}

#[test]
fn multi_substream_requests_map_every_substream() {
    let mut engine = engine_with(ComposerKind::MinCost, 29);
    let req = ServiceRequest::multi(
        vec![vec![0, 1], vec![2], vec![3, 4]],
        vec![10.0, 5.0, 8.0],
        8,
        9,
    );
    let app = engine.submit(req).unwrap();
    let graph = engine.app_graph(app).clone();
    assert_eq!(graph.substreams.len(), 3);
    assert_eq!(graph.substreams[0].len(), 2);
    assert_eq!(graph.substreams[1].len(), 1);
    assert_eq!(graph.substreams[2].len(), 2);
    // All three substreams deliver.
    engine.run_for_secs(15.0);
    for l in 0..3 {
        let (delivered, _, _) = engine.app_delivery_stats(app)[l];
        assert!(delivered > 0, "substream {l} delivered nothing");
    }
}

#[test]
fn unknown_service_and_no_provider_are_rejected_cleanly() {
    use rasc::core::compose::ComposeError;
    let mut engine = engine_with(ComposerKind::MinCost, 31);
    // Service 9 does not exist in the 5-service catalog.
    let err = engine
        .submit(ServiceRequest::chain(&[9], 5.0, 8, 9))
        .unwrap_err();
    assert!(matches!(err, ComposeError::UnknownService(_)));
    let report = engine.report();
    assert_eq!(report.rejected, 1);
    assert_eq!(report.composed, 0);
}

#[test]
fn rejected_requests_leave_no_runtime_residue() {
    let mut engine = engine_with(ComposerKind::Greedy, 37);
    // Far beyond any node's capacity.
    let _ = engine
        .submit(ServiceRequest::chain(&[0, 1], 10_000.0, 8, 9))
        .unwrap_err();
    engine.run_for_secs(5.0);
    let report = engine.report();
    assert_eq!(report.generated, 0, "rejected app must not emit units");
    assert_eq!(engine.app_count(), 0);
}

#[test]
fn discovery_agrees_with_directory_ground_truth() {
    let engine = engine_with(ComposerKind::MinCost, 41);
    for service in 0..5 {
        let providers = engine.directory().providers(service);
        assert!(!providers.is_empty(), "service {service} unprovided");
        for &p in &providers {
            assert!(engine.directory().hosts(p, service));
        }
    }
}
