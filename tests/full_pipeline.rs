//! End-to-end integration: the full stack (overlay discovery →
//! composition → runtime → metrics) on the paper's scenario, across all
//! three composition algorithms.

use rasc::core::compose::ComposerKind;
use rasc::workloads::{run_experiment, PaperSetup};

/// Basic accounting invariants every run must satisfy, regardless of
/// algorithm, seed, or rate.
fn check_invariants(report: &rasc::core::metrics::RunReport, requests: u64) {
    assert_eq!(
        report.composed + report.rejected,
        requests,
        "every request is either composed or rejected"
    );
    assert!(
        report.delivered <= report.generated,
        "delivery conservation"
    );
    assert!(
        report.timely <= report.delivered,
        "timely units are delivered units"
    );
    assert!(
        report.out_of_order <= report.delivered,
        "out-of-order units are delivered units"
    );
    assert!(
        report.delivered + report.total_drops() <= report.generated,
        "units are delivered, dropped, or still in flight — never both"
    );
    for frac in [
        report.delivered_fraction(),
        report.timely_fraction(),
        report.out_of_order_fraction(),
    ] {
        assert!((0.0..=1.0).contains(&frac), "fraction out of range: {frac}");
    }
    if report.composed > 0 {
        assert!(report.generated > 0, "composed apps must generate units");
        assert!(
            report.components as usize >= report.composed as usize,
            "each composed app has at least one component per service"
        );
    }
}

#[test]
fn all_algorithms_satisfy_invariants_across_rates() {
    for kind in ComposerKind::ALL {
        for rate in [50.0, 200.0] {
            let setup = PaperSetup {
                avg_rate_kbps: rate,
                requests: 8,
                submit_window_secs: 8.0,
                measure_secs: 30.0,
                seed: 5,
                ..PaperSetup::default()
            };
            let out = run_experiment(&setup, kind);
            check_invariants(&out.report, 8);
            assert!(
                out.report.delivered > 0,
                "{kind:?} at {rate} delivered nothing"
            );
        }
    }
}

#[test]
fn full_runs_are_deterministic_per_seed() {
    for kind in ComposerKind::ALL {
        let setup = PaperSetup::small(31);
        let a = run_experiment(&setup, kind).report;
        let b = run_experiment(&setup, kind).report;
        assert_eq!(a.composed, b.composed, "{kind:?}");
        assert_eq!(a.generated, b.generated, "{kind:?}");
        assert_eq!(a.delivered, b.delivered, "{kind:?}");
        assert_eq!(a.timely, b.timely, "{kind:?}");
        assert_eq!(a.out_of_order, b.out_of_order, "{kind:?}");
        assert_eq!(a.drops, b.drops, "{kind:?}");
        assert_eq!(a.components, b.components, "{kind:?}");
        assert!((a.delay_ms.mean() - b.delay_ms.mean()).abs() < 1e-12);
        assert!((a.jitter_ms.mean() - b.jitter_ms.mean()).abs() < 1e-12);
    }
}

#[test]
fn different_seeds_produce_different_runs() {
    let a = run_experiment(&PaperSetup::small(1), ComposerKind::MinCost).report;
    let b = run_experiment(&PaperSetup::small(2), ComposerKind::MinCost).report;
    // Astronomically unlikely to coincide on all of these.
    assert!(
        a.generated != b.generated
            || a.delivered != b.delivered
            || (a.delay_ms.mean() - b.delay_ms.mean()).abs() > 1e-9,
        "two seeds produced identical runs"
    );
}

#[test]
fn mincost_admits_at_least_as_many_requests_under_pressure() {
    // At 200 Kb/s the weak nodes cannot carry whole streams: splitting
    // is the only way to use them, so min-cost composition must admit
    // at least as many requests as single-placement baselines.
    let mut mincost_total = 0u64;
    let mut random_total = 0u64;
    let mut greedy_total = 0u64;
    for seed in [1, 2, 3] {
        let setup = PaperSetup {
            avg_rate_kbps: 200.0,
            seed,
            ..PaperSetup::default()
        };
        mincost_total += run_experiment(&setup, ComposerKind::MinCost)
            .report
            .composed;
        random_total += run_experiment(&setup, ComposerKind::Random).report.composed;
        greedy_total += run_experiment(&setup, ComposerKind::Greedy).report.composed;
    }
    assert!(
        mincost_total > random_total,
        "mincost {mincost_total} vs random {random_total}"
    );
    assert!(
        mincost_total > greedy_total,
        "mincost {mincost_total} vs greedy {greedy_total}"
    );
}

#[test]
fn splitting_occurs_only_for_mincost() {
    let setup = PaperSetup {
        avg_rate_kbps: 200.0,
        seed: 4,
        ..PaperSetup::default()
    };
    let mc = run_experiment(&setup, ComposerKind::MinCost).report;
    let rn = run_experiment(&setup, ComposerKind::Random).report;
    let gr = run_experiment(&setup, ComposerKind::Greedy).report;
    assert!(mc.split_requests > 0, "expected rate splitting at 200 Kb/s");
    assert_eq!(rn.split_requests, 0, "random must never split");
    assert_eq!(gr.split_requests, 0, "greedy must never split");
}
