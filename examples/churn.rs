//! Node churn: RASC dynamically re-composes applications around
//! failures.
//!
//! ```text
//! cargo run --release --example churn
//! ```
//!
//! A monitoring stream runs across an overlay while provider nodes fail
//! one after another. Each failure triggers: overlay repair (Pastry
//! routes around the corpse), registry re-replication (the DHT forgets
//! the dead provider), and dynamic re-composition of the affected
//! application onto survivors. The control-plane trace at the end shows
//! the whole story.

use rasc::core::compose::ComposerKind;
use rasc::core::engine::Engine;
use rasc::core::model::{ServiceCatalog, ServiceRequest};
use rasc::net::{kbps, TopologyBuilder};
use rasc::sim::SimDuration;

fn main() {
    let catalog = ServiceCatalog::synthetic(2, 33);
    let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(20));
    for _ in 0..8 {
        b.node(kbps(2_000.0), kbps(2_000.0));
    }
    let mut offers = vec![vec![0, 1]; 6]; // six interchangeable providers
    offers.push(vec![]); // 6: source
    offers.push(vec![]); // 7: destination
    let mut engine = Engine::builder(8, catalog, 33)
        .topology(b.build())
        .offers(offers)
        .composer(ComposerKind::MinCost)
        .build();
    engine.enable_trace(256);

    engine
        .submit(ServiceRequest::chain(&[0, 1], 15.0, 6, 7))
        .expect("initial composition");

    // Let it run, then fail the app's current hosts one by one.
    for round in 0..3 {
        engine.run_for_secs(8.0);
        let app = engine.app_count() - 1;
        let victim = engine.app_graph(app).substreams[0][0].placements[0].node;
        println!(
            "t={:.0}s round {round}: failing node {victim} (hosting the app's first stage)",
            engine.now().as_secs_f64()
        );
        engine.fail_node(victim);
    }
    engine.run_for_secs(8.0);

    let r = engine.report();
    println!("\nafter 3 failures:");
    println!("  recompositions      : {}", r.recompositions);
    println!("  units generated     : {}", r.generated);
    println!(
        "  delivered           : {} ({:.1}%)",
        r.delivered,
        100.0 * r.delivered_fraction()
    );
    println!(
        "  lost to failed nodes: {}",
        r.drops[rasc::core::metrics::DropCause::NodeFailed as usize]
    );

    println!("\ncontrol-plane trace:");
    print!("{}", engine.trace().expect("enabled").to_csv());
}
