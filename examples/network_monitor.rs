//! Network-traffic monitoring under load: comparing composition
//! algorithms on the paper's own scenario.
//!
//! ```text
//! cargo run --release --example network_monitor
//! ```
//!
//! Runs the §4.1 PlanetLab-style scenario once per composition
//! algorithm at 150 Kb/s — the regime where capacity gets scarce — and
//! prints a side-by-side comparison, including how often RASC resorted
//! to rate splitting and each node-class's role.

use rasc::core::compose::ComposerKind;
use rasc::workloads::{run_experiment, PaperSetup};

fn main() {
    let setup = PaperSetup {
        avg_rate_kbps: 150.0,
        seed: 11,
        ..Default::default()
    };
    println!(
        "scenario: {} processing nodes ({} strong / {} weak), {} edge nodes, \
         {} requests at ~{} Kb/s each\n",
        setup.processing_nodes(),
        setup.strong_nodes.0,
        setup.weak_nodes.0,
        setup.edge_nodes.0,
        setup.requests,
        setup.avg_rate_kbps
    );

    println!(
        "{:<10}{:>10}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "algorithm", "composed", "delivered", "timely", "delay(ms)", "jitter(ms)", "splits"
    );
    for kind in ComposerKind::ALL {
        let out = run_experiment(&setup, kind);
        let r = &out.report;
        println!(
            "{:<10}{:>10}{:>11.1}%{:>11.1}%{:>12.1}{:>12.2}{:>10}",
            kind.label(),
            r.composed,
            100.0 * r.delivered_fraction(),
            100.0 * r.timely_fraction(),
            r.delay_ms.mean(),
            r.jitter_ms.mean(),
            r.split_requests,
        );
    }
    println!(
        "\nRASC composes more of the offered requests by splitting services \
         across nodes too small to host a whole stream; see EXPERIMENTS.md \
         for the full rate sweep (Figures 6-11)."
    );
}
