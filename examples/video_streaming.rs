//! Video streaming with rate splitting — the paper's motivating workload.
//!
//! ```text
//! cargo run --example video_streaming
//! ```
//!
//! A video stream must be transcoded and watermarked on its way to a
//! viewer at a rate no single available node can sustain. The example
//! shows the distinguishing feature of RASC: the min-cost composition
//! *splits* the transcode stage across several nodes, each carrying a
//! fraction of the stream, where single-placement composition (the
//! random/greedy baselines) must reject the request outright.

use rasc::core::compose::ComposerKind;
use rasc::core::engine::{Engine, EngineConfig};
use rasc::core::model::{Service, ServiceCatalog, ServiceRequest};
use rasc::net::{kbps, TopologyBuilder};
use rasc::sim::SimDuration;

fn build_engine(kind: ComposerKind) -> Engine {
    let catalog = ServiceCatalog::new(vec![
        Service {
            id: 0,
            name: "transcode-h264".into(),
            exec_time: SimDuration::from_millis(6),
            rate_ratio: 1.0,
        },
        Service {
            id: 1,
            name: "watermark".into(),
            exec_time: SimDuration::from_millis(2),
            rate_ratio: 1.0,
        },
    ]);

    // Node 0: the streaming server. Nodes 1-4: transcoding hosts, each
    // too small for the full stream. Node 5: a watermarking host.
    // Node 6: the viewer.
    let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(25));
    b.node(kbps(5_000.0), kbps(5_000.0)); // 0 server
    for _ in 0..4 {
        b.node(kbps(450.0), kbps(450.0)); // 1..=4 small transcode hosts
    }
    b.node(kbps(4_000.0), kbps(4_000.0)); // 5 watermark host
    b.node(kbps(5_000.0), kbps(5_000.0)); // 6 viewer

    Engine::builder(7, catalog, 7)
        .topology(b.build())
        .offers(vec![
            vec![],
            vec![0],
            vec![0],
            vec![0],
            vec![0],
            vec![1],
            vec![],
        ])
        .config(EngineConfig {
            composer: kind,
            ..Default::default()
        })
        .build()
}

fn main() {
    // 1 Mb/s of video at 8 Kbit units = 122 du/s. Each transcode host
    // can ingest at most ~450*0.75/8.192 ≈ 41 du/s: splitting required.
    let request = || ServiceRequest::chain(&[0, 1], 122.0, 0, 6);

    println!("--- greedy (single placement per service) ---");
    let mut greedy = build_engine(ComposerKind::Greedy);
    match greedy.submit(request()) {
        Ok(_) => println!("unexpectedly composed!"),
        Err(e) => println!("rejected: {e} (no single host can carry 122 du/s)"),
    }

    println!("\n--- RASC min-cost composition ---");
    let mut rasc = build_engine(ComposerKind::MinCost);
    match rasc.submit(request()) {
        Err(e) => println!("unexpectedly rejected: {e}"),
        Ok(app) => {
            let graph = rasc.app_graph(app).clone();
            println!(
                "composed with {} component instances (split: {})",
                graph.component_count(),
                graph.has_splitting()
            );
            for stage in &graph.substreams[0] {
                let parts: Vec<String> = stage
                    .placements
                    .iter()
                    .map(|p| format!("node {} @ {:.1} du/s", p.node, p.rate))
                    .collect();
                println!("  service {}: {}", stage.service, parts.join(" + "));
            }
            rasc.run_for_secs(20.0);
            let r = rasc.report();
            println!(
                "\nviewer received {:.1}% of {} units, mean delay {:.0} ms, jitter {:.1} ms",
                100.0 * r.delivered_fraction(),
                r.generated,
                r.delay_ms.mean(),
                r.jitter_ms.mean()
            );
        }
    }
}
