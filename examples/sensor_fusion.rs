//! Sensor-network fusion: a multi-substream request under node churn.
//!
//! ```text
//! cargo run --example sensor_fusion
//! ```
//!
//! A monitoring application fuses two sensor feeds (the paper's Figure 2
//! shape): substream 1 flows through `calibrate → aggregate`, substream
//! 2 through `classify`, both meeting at the operator console. The
//! example also exercises the overlay's failure handling: midway through
//! the run a provider node fails, and a *new* request composed afterward
//! routes around it via the DHT's replicated registry.

use rasc::core::compose::ComposerKind;
use rasc::core::engine::Engine;
use rasc::core::model::{ServiceCatalog, ServiceRequest};
use rasc::pastry::{stable_hash128, Dht, Overlay};

fn main() {
    // --- Part 1: multi-substream composition -------------------------
    let catalog = ServiceCatalog::synthetic(3, 9); // calibrate/aggregate/classify
    let mut engine = Engine::builder(16, catalog, 9)
        .composer(ComposerKind::MinCost)
        .build();

    let request = ServiceRequest::multi(
        vec![vec![0, 1], vec![2]], // two substreams, as in Figure 2
        vec![20.0, 10.0],          // du/s per substream
        2,                         // sensor gateway
        13,                        // operator console
    );
    let app = engine.submit(request).expect("composition");
    println!("fusion app composed; execution graph:");
    for (l, stages) in engine.app_graph(app).substreams.iter().enumerate() {
        for stage in stages {
            let hosts: Vec<usize> = stage.placements.iter().map(|p| p.node).collect();
            println!("  substream {l}, service {} on {:?}", stage.service, hosts);
        }
    }
    engine.run_for_secs(25.0);
    let r = engine.report();
    println!(
        "console received {:.1}% of {} readings ({:.1}% on schedule)\n",
        100.0 * r.delivered_fraction(),
        r.generated,
        100.0 * r.timely_fraction()
    );

    // --- Part 2: discovery survives provider failure -----------------
    // (Directly on the overlay substrate, outside a running engine.)
    let flat = |_: usize, _: usize| 1.0;
    let mut overlay = Overlay::build(16, 9, &flat);
    let mut dht: Dht<usize> = Dht::new(16, 2);
    let key = stable_hash128(b"classify");
    for provider in [3usize, 8, 12] {
        dht.insert(&overlay, provider, key, provider);
    }
    let before = dht.lookup(&overlay, 0, key);
    println!(
        "providers of 'classify' before failure: {:?}",
        before.values
    );

    let owner = overlay.owner_of(key);
    println!("DHT owner of the registration is node {owner}; failing it");
    overlay.remove(owner);
    dht.repair(&overlay);

    let from = overlay.alive_members().next().unwrap();
    let after = dht.lookup(&overlay, from, key);
    println!(
        "providers after failure + repair:       {:?} (lookup route: {:?})",
        after.values, after.path
    );
    assert_eq!(before.values, after.values, "registry lost data");
    println!("registry intact: replication absorbed the failure");
}
