//! Quickstart: compose one stream processing application with RASC and
//! watch it run.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a small overlay, submits a 3-service request, prints the
//! execution graph the min-cost composition chose, runs the stream for
//! 30 simulated seconds, and prints the delivery report.

use rasc::core::compose::ComposerKind;
use rasc::core::engine::Engine;
use rasc::core::model::{ServiceCatalog, ServiceRequest};

fn main() {
    // A catalog of 6 synthetic services (1–8 ms per data unit each).
    let catalog = ServiceCatalog::synthetic(6, 42);

    // 12 nodes with PlanetLab-like heterogeneous capacities/latencies.
    let mut engine = Engine::builder(12, catalog, 42)
        .composer(ComposerKind::MinCost)
        .build();

    // A request: process a stream through services 0 → 3 → 5 at
    // 12 data units/second, from node 0 to node 11.
    let request = ServiceRequest::chain(&[0, 3, 5], 12.0, 0, 11);
    println!(
        "submitting: services {:?} at {} du/s, {} → {}",
        request.graph.substreams[0].services, request.rates[0], request.source, request.destination
    );

    let app = match engine.submit(request) {
        Ok(app) => app,
        Err(e) => {
            eprintln!("composition failed: {e}");
            std::process::exit(1);
        }
    };

    println!("\nexecution graph:");
    for (l, stages) in engine.app_graph(app).substreams.iter().enumerate() {
        for (i, stage) in stages.iter().enumerate() {
            let placements: Vec<String> = stage
                .placements
                .iter()
                .map(|p| format!("node {} @ {:.1} du/s", p.node, p.rate))
                .collect();
            println!(
                "  substream {l} stage {i} (service {}): {}",
                stage.service,
                placements.join(" + ")
            );
        }
    }

    engine.run_for_secs(30.0);

    let report = engine.report();
    println!("\nafter 30 simulated seconds:");
    println!("  data units generated : {}", report.generated);
    println!(
        "  delivered            : {} ({:.1}%)",
        report.delivered,
        100.0 * report.delivered_fraction()
    );
    println!(
        "  delivered on schedule: {:.1}%",
        100.0 * report.timely_fraction()
    );
    println!("  mean end-to-end delay: {:.1} ms", report.delay_ms.mean());
    println!("  mean jitter          : {:.2} ms", report.jitter_ms.mean());
    println!(
        "  drops (sender NIC / receiver NIC / queue / deadline): {:?}",
        report.drops
    );
}
